#include "common/config.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace prime {

void
Config::set(const std::string &assignment)
{
    const auto eq = assignment.find('=');
    PRIME_FATAL_IF(eq == std::string::npos || eq == 0,
                   "malformed assignment '", assignment,
                   "' (want key=value)");
    set(assignment.substr(0, eq), assignment.substr(eq + 1));
}

void
Config::set(const std::string &key, const std::string &value)
{
    values_[key] = value;
    used_[key] = false;
}

bool
Config::has(const std::string &key) const
{
    return values_.count(key) > 0;
}

double
Config::getDouble(const std::string &key, double fallback) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    used_[key] = true;
    char *end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    PRIME_FATAL_IF(end == it->second.c_str() || *end != '\0',
                   "config key '", key, "': '", it->second,
                   "' is not a number");
    return v;
}

int
Config::getInt(const std::string &key, int fallback) const
{
    const double v = getDouble(key, static_cast<double>(fallback));
    const int i = static_cast<int>(v);
    PRIME_FATAL_IF(static_cast<double>(i) != v, "config key '", key,
                   "' wants an integer");
    return i;
}

std::string
Config::getString(const std::string &key,
                  const std::string &fallback) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    used_[key] = true;
    return it->second;
}

std::vector<std::string>
Config::keys() const
{
    std::vector<std::string> out;
    out.reserve(values_.size());
    for (const auto &kv : values_)
        out.push_back(kv.first);
    return out;
}

std::vector<std::string>
Config::unusedKeys() const
{
    std::vector<std::string> out;
    for (const auto &kv : used_)
        if (!kv.second)
            out.push_back(kv.first);
    return out;
}

} // namespace prime
