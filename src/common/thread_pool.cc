#include "common/thread_pool.hh"

#include <cstdlib>
#include <memory>
#include <string>

#include "common/telemetry/trace_session.hh"

namespace prime {

namespace {

/** Set while a thread is executing pool work: permanently on worker
 *  threads, and on the calling thread for the span of its own
 *  parallelFor participation.  Nested parallelFor calls from inside a
 *  body then run inline instead of re-entering (and deadlocking) the
 *  pool. */
thread_local bool tls_in_pool = false;

} // namespace

ThreadPool::ThreadPool(int threads)
{
    if (threads <= 0)
        threads = defaultThreadCount();
    for (int i = 1; i < threads; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

int
ThreadPool::defaultThreadCount()
{
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env lookup; the
    // simulator never calls setenv/putenv after startup.
    if (const char *env = std::getenv("PRIME_THREADS")) {
        const int n = std::atoi(env);
        if (n > 0)
            return n;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

void
ThreadPool::runJob(const std::function<void(std::size_t)> &body,
                   std::size_t size)
{
    std::size_t i;
    while ((i = next_.fetch_add(1, std::memory_order_relaxed)) < size) {
        // Each claimed index is one traced task on this thread's lane.
        PRIME_SPAN(telemetry::globalTrace(), "pool.task", "pool");
        body(i);
    }
}

void
ThreadPool::workerLoop(int index)
{
    telemetry::setTraceThreadName("pool-worker-" + std::to_string(index));
    tls_in_pool = true;
    std::uint64_t seen = 0;
    for (;;) {
        UniqueLock lock(mutex_);
        while (!stop_ && generation_ == seen)
            wake_.wait(lock);
        if (stop_)
            return;
        seen = generation_;
        --pending_;
        ++running_;
        // Snapshot the job under the lock; the pointee stays valid
        // until this worker's matching --running_ below (parallelFor
        // clears body_ only after done_ observed running_ == 0).
        const std::function<void(std::size_t)> *body = body_;
        const std::size_t size = jobSize_;
        lock.unlock();

        runJob(*body, size);

        lock.lock();
        --running_;
        if (pending_ == 0 && running_ == 0)
            done_.notify_all();
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &body)
{
    if (n == 0)
        return;
    // Sequential fallback: no workers, a trivially small job, or a
    // nested call from inside a pool job (which must not block, or --
    // on the calling thread -- self-deadlock on serialMutex_).
    if (workers_.empty() || n == 1 || tls_in_pool) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    MutexLock serial(serialMutex_);
    {
        MutexLock lock(mutex_);
        body_ = &body;
        jobSize_ = n;
        next_.store(0, std::memory_order_relaxed);
        pending_ = static_cast<int>(workers_.size());
        ++generation_;
    }
    wake_.notify_all();

    tls_in_pool = true;
    runJob(body, n);  // the caller is a full participant
    tls_in_pool = false;

    UniqueLock lock(mutex_);
    while (pending_ != 0 || running_ != 0)
        done_.wait(lock);
    body_ = nullptr;
    jobSize_ = 0;
}

WorkerGroup::WorkerGroup(const std::string &name_prefix,
                         std::size_t count,
                         std::function<void(std::size_t)> body)
    : states_(std::make_shared<std::vector<std::atomic<int>>>(count))
{
    threads_.reserve(count);
    // One shared copy of the body; workers only call it, so sharing is
    // safe and keeps captured state (rings, result buffers) in one
    // place.  The state vector is shared the same way so a worker's
    // final Done store stays valid even if the group is destroyed
    // between the store and the thread's exit.
    auto shared = std::make_shared<std::function<void(std::size_t)>>(
        std::move(body));
    for (std::size_t i = 0; i < count; ++i) {
        threads_.emplace_back([shared, states = states_, name_prefix, i] {
            telemetry::setTraceThreadName(name_prefix + "-" +
                                          std::to_string(i));
            // Pool-context marker: nested parallelFor runs inline (a
            // blocked stage worker must never park the whole group on
            // the shared pool's serial job slot).
            tls_in_pool = true;
            (*states)[i].store(static_cast<int>(WorkerState::Running),
                               std::memory_order_relaxed);
            (*shared)(i);
            (*states)[i].store(static_cast<int>(WorkerState::Done),
                               std::memory_order_relaxed);
        });
    }
}

WorkerGroup::~WorkerGroup()
{
    join();
}

void
WorkerGroup::join()
{
    for (std::thread &t : threads_)
        if (t.joinable())
            t.join();
}

std::size_t
WorkerGroup::runningWorkers() const
{
    std::size_t running = 0;
    for (const std::atomic<int> &state : *states_)
        if (state.load(std::memory_order_relaxed) ==
            static_cast<int>(WorkerState::Running))
            ++running;
    return running;
}

namespace {

Mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool PRIME_GUARDED_BY(g_pool_mutex);
int g_requested_threads PRIME_GUARDED_BY(g_pool_mutex) = 0;

} // namespace

ThreadPool &
ThreadPool::global()
{
    MutexLock lock(g_pool_mutex);
    if (!g_pool)
        g_pool = std::make_unique<ThreadPool>(g_requested_threads);
    return *g_pool;
}

void
ThreadPool::setGlobalThreadCount(int n)
{
    MutexLock lock(g_pool_mutex);
    g_requested_threads = n > 0 ? n : 0;
    g_pool.reset();  // rebuilt at the new size on next global() use
}

} // namespace prime
