/**
 * @file
 * Time-series metrics: a registry of named gauge/counter probes and a
 * background sampler thread that periodically snapshots every
 * registered probe into an in-memory ring of timestamped snapshots.
 *
 * Where the stats package (common/stats.hh) accumulates totals and the
 * trace session records individual spans, the metrics registry answers
 * "what did this look like *while* it ran": queue depths, worker
 * states, per-bank memory backlog, counter rates -- the continuous
 * utilization signals a serving scheduler or a bottleneck report needs.
 * Snapshots export as JSONL time-series (one JSON object per line, for
 * tools/metrics_report.py) and as Prometheus-style text exposition.
 *
 * Threading contract:
 *  - Probes are std::function<double()> callables sampled by the
 *    sampler thread (or by sampleOnce() callers).  The registrant
 *    guarantees the probe is safe to call from another thread at any
 *    time between probe() and unregister(): read atomics (e.g.
 *    SpscRing::approxSize, WorkerGroup::runningWorkers, relaxed Stat
 *    snapshots), or take a short-lived lock (the per-bank MainMemory
 *    probes).  A probe must never call back into its registry.
 *  - One mutex guards the probe table and the snapshot ring; a tick
 *    holds it across all probe calls, so unregister() returning
 *    guarantees no in-flight tick still runs the removed probe (the
 *    pipeline executor relies on this to unregister its ring-depth
 *    gauges before the rings are destroyed).  The guarded members are
 *    machine-checked: PRIME_GUARDED_BY(mutex_) under the clang-tsa
 *    preset, not just this prose.  Because a tick holds mutex_ across
 *    probe calls, a probe that locks any non-leaf mutex risks deadlock
 *    -- prime_lint rule `sampler-lock` flags mutex acquisition inside
 *    probe closures (the per-bank MainMemory probes carry reasoned
 *    suppressions: shard locks are leaf locks).
 *  - enable()/disable() are atomic; a disabled registry refuses to
 *    sample and costs registration sites exactly one load+branch (the
 *    PRIME_SPAN discipline).  Nothing on a simulator hot path touches
 *    the registry at all -- sampling cost lives on the sampler thread.
 *
 * Naming convention: dotted lowercase group.metric names, exactly like
 * stats (tools/prime_lint.py enforces both).  The Prometheus exposition
 * sanitizes dots to underscores and prefixes "prime_".
 */

#ifndef PRIME_COMMON_TELEMETRY_METRICS_HH
#define PRIME_COMMON_TELEMETRY_METRICS_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.hh"
#include "common/thread_annotations.hh"

namespace prime::telemetry {

/** How a metric's samples relate over time. */
enum class MetricKind
{
    Gauge,    ///< instantaneous value (queue depth, worker state)
    Counter,  ///< monotonically accumulating total (items, bytes)
};

/** Registry of named probes + snapshot ring + sampler thread. */
class MetricsRegistry
{
  public:
    /** A probe: returns the metric's current value, thread-safely. */
    using Probe = std::function<double()>;

    /** One sampled value inside a snapshot. */
    struct Value
    {
        std::string name;
        MetricKind kind = MetricKind::Gauge;
        double value = 0.0;
    };

    /** One timestamped tick over every probe registered at the time. */
    struct Snapshot
    {
        std::int64_t tsNs = 0;  ///< ns since the registry epoch
        std::vector<Value> values;
    };

    /** Per-metric aggregate over the recorded snapshots. */
    struct SeriesSummary
    {
        std::string name;
        MetricKind kind = MetricKind::Gauge;
        std::size_t samples = 0;
        double min = 0.0;
        double max = 0.0;
        double mean = 0.0;
        double last = 0.0;
    };

    /** A registry buffering up to @p snapshot_capacity snapshots
     *  (oldest dropped first; see droppedSnapshots). */
    explicit MetricsRegistry(std::size_t snapshot_capacity = 4096);
    ~MetricsRegistry();

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** Start accepting samples (timestamps count from enable time). */
    void enable();
    /** Stop accepting samples (snapshots are kept for export). */
    void disable();
    bool enabled() const
    {
        return enabled_.load(std::memory_order_acquire);
    }

    /** Register (or replace) a probe under @p name. */
    void probe(const std::string &name, MetricKind kind, Probe fn);
    /** Register an instantaneous-value probe. */
    void gauge(const std::string &name, Probe fn);
    /** Register an accumulating-total probe. */
    void counter(const std::string &name, Probe fn);

    /**
     * Remove a probe.  On return no sampler tick (running or future)
     * will call it again, so whatever it captured may be destroyed.
     */
    void unregister(const std::string &name);

    std::size_t sourceCount() const;

    /**
     * Spawn the sampler thread: one snapshot immediately, then one
     * every @p interval_ms until stopSampler().  No-op when already
     * running; a disabled registry spawns nothing.
     */
    void startSampler(int interval_ms);

    /**
     * Join the sampler thread and take one final snapshot (so a run's
     * end state is always recorded).  No-op when not running.
     */
    void stopSampler();

    bool samplerRunning() const;

    /** Take one snapshot now; false when disabled. */
    bool sampleOnce();

    std::size_t snapshotCount() const;
    /** Snapshots evicted because the ring was full. */
    std::uint64_t droppedSnapshots() const;

    /** Drop recorded snapshots (probes stay registered). */
    void clear();

    /**
     * JSONL time-series: one {"ts_ns":N,"metrics":{...}} object per
     * line, snapshots in recording order.
     */
    void writeJsonl(std::ostream &os) const;

    /**
     * Prometheus-style text exposition of the latest snapshot:
     * "# TYPE prime_<name> gauge|counter" + "prime_<name> <value>"
     * per metric, dots sanitized to underscores.
     */
    void writePrometheus(std::ostream &os) const;

    /** Per-metric aggregates over all snapshots, sorted by name. */
    std::vector<SeriesSummary> summarize() const;

    /** "mem.bank0.reads" -> "prime_mem_bank0_reads". */
    static std::string prometheusName(const std::string &name);

  private:
    struct Source
    {
        MetricKind kind = MetricKind::Gauge;
        Probe fn;
    };

    void samplerLoop(int interval_ms);

    std::atomic<bool> enabled_{false};
    std::chrono::steady_clock::time_point epoch_;

    /** Guards sources_, snapshots_ and dropped_ (see class contract). */
    mutable Mutex mutex_;
    std::vector<std::pair<std::string, Source>> sources_
        PRIME_GUARDED_BY(mutex_);
    std::deque<Snapshot> snapshots_ PRIME_GUARDED_BY(mutex_);
    std::size_t capacity_;
    std::uint64_t dropped_ PRIME_GUARDED_BY(mutex_) = 0;

    /** Sampler thread lifecycle (separate from the sampling mutex so
     *  stopSampler never blocks behind a tick). */
    Mutex samplerMutex_;
    CondVar samplerCv_;
    bool stopRequested_ PRIME_GUARDED_BY(samplerMutex_) = false;
    std::thread sampler_;
};

/**
 * The process-wide registry instrumentation sites check (the pipeline
 * executor registers its live ring-depth/stage-state gauges here).
 * Never null: defaults to an inert, permanently disabled registry until
 * setGlobalMetrics installs a real one.
 */
MetricsRegistry *globalMetrics();

/** Install (or, with nullptr, uninstall) the process-wide registry. */
void setGlobalMetrics(MetricsRegistry *registry);

} // namespace prime::telemetry

#endif // PRIME_COMMON_TELEMETRY_METRICS_HH
