#include "common/telemetry/metrics.hh"

#include <algorithm>
#include <map>
#include <utility>

#include "common/telemetry/json.hh"

namespace prime::telemetry {

MetricsRegistry::MetricsRegistry(std::size_t snapshot_capacity)
    : epoch_(std::chrono::steady_clock::now()),
      capacity_(std::max<std::size_t>(1, snapshot_capacity))
{
}

MetricsRegistry::~MetricsRegistry()
{
    stopSampler();
}

void
MetricsRegistry::enable()
{
    epoch_ = std::chrono::steady_clock::now();
    // Release pairs with the acquire in enabled(): a sampler seeing
    // "enabled" also sees the epoch written just before it.
    enabled_.store(true, std::memory_order_release);
}

void
MetricsRegistry::disable()
{
    enabled_.store(false, std::memory_order_release);
}

void
MetricsRegistry::probe(const std::string &name, MetricKind kind, Probe fn)
{
    MutexLock lock(mutex_);
    for (auto &[existing, source] : sources_) {
        if (existing == name) {
            source = Source{kind, std::move(fn)};
            return;
        }
    }
    sources_.emplace_back(name, Source{kind, std::move(fn)});
}

void
MetricsRegistry::gauge(const std::string &name, Probe fn)
{
    probe(name, MetricKind::Gauge, std::move(fn));
}

void
MetricsRegistry::counter(const std::string &name, Probe fn)
{
    probe(name, MetricKind::Counter, std::move(fn));
}

void
MetricsRegistry::unregister(const std::string &name)
{
    // Taking the sampling mutex serializes against an in-flight tick:
    // once we hold it, no tick is mid-probe, and the erased source can
    // never be called again.
    MutexLock lock(mutex_);
    sources_.erase(
        std::remove_if(sources_.begin(), sources_.end(),
                       [&](const auto &s) { return s.first == name; }),
        sources_.end());
}

std::size_t
MetricsRegistry::sourceCount() const
{
    MutexLock lock(mutex_);
    return sources_.size();
}

bool
MetricsRegistry::sampleOnce()
{
    if (!enabled())
        return false;
    const std::int64_t ts =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count();
    MutexLock lock(mutex_);
    Snapshot snap;
    snap.tsNs = ts;
    snap.values.reserve(sources_.size());
    for (const auto &[name, source] : sources_)
        snap.values.push_back(Value{name, source.kind, source.fn()});
    if (snapshots_.size() == capacity_) {
        snapshots_.pop_front();
        ++dropped_;
    }
    snapshots_.push_back(std::move(snap));
    return true;
}

void
MetricsRegistry::samplerLoop(int interval_ms)
{
    const auto interval = std::chrono::milliseconds(
        std::max(1, interval_ms));
    for (;;) {
        sampleOnce();
        // Deadline loop instead of wait_for-with-predicate: the
        // stopRequested_ reads stay in this locked scope where the
        // analysis can see the capability (see common/mutex.hh).
        const auto deadline = std::chrono::steady_clock::now() + interval;
        UniqueLock lock(samplerMutex_);
        while (!stopRequested_) {
            if (samplerCv_.waitUntil(lock, deadline) ==
                std::cv_status::timeout)
                break;
        }
        if (stopRequested_)
            return;
    }
}

void
MetricsRegistry::startSampler(int interval_ms)
{
    if (!enabled() || sampler_.joinable())
        return;
    {
        MutexLock lock(samplerMutex_);
        stopRequested_ = false;
    }
    sampler_ = std::thread(
        [this, interval_ms] { samplerLoop(interval_ms); });
}

void
MetricsRegistry::stopSampler()
{
    if (!sampler_.joinable())
        return;
    {
        MutexLock lock(samplerMutex_);
        stopRequested_ = true;
    }
    samplerCv_.notify_all();
    sampler_.join();
    sampler_ = std::thread();
    // Final tick: a run's end state is always the last snapshot.
    sampleOnce();
}

bool
MetricsRegistry::samplerRunning() const
{
    return sampler_.joinable();
}

std::size_t
MetricsRegistry::snapshotCount() const
{
    MutexLock lock(mutex_);
    return snapshots_.size();
}

std::uint64_t
MetricsRegistry::droppedSnapshots() const
{
    MutexLock lock(mutex_);
    return dropped_;
}

void
MetricsRegistry::clear()
{
    MutexLock lock(mutex_);
    snapshots_.clear();
    dropped_ = 0;
}

void
MetricsRegistry::writeJsonl(std::ostream &os) const
{
    MutexLock lock(mutex_);
    for (const Snapshot &snap : snapshots_) {
        os << "{\"ts_ns\":" << snap.tsNs << ",\"metrics\":{";
        bool first = true;
        for (const Value &v : snap.values) {
            if (!first)
                os << ",";
            first = false;
            jsonString(os, v.name);
            os << ":";
            jsonNumber(os, v.value);
        }
        os << "}}\n";
    }
}

std::string
MetricsRegistry::prometheusName(const std::string &name)
{
    std::string out = "prime_";
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == ':';
        out.push_back(ok ? c : '_');
    }
    return out;
}

void
MetricsRegistry::writePrometheus(std::ostream &os) const
{
    MutexLock lock(mutex_);
    if (snapshots_.empty())
        return;
    const Snapshot &last = snapshots_.back();
    for (const Value &v : last.values) {
        const std::string name = prometheusName(v.name);
        os << "# TYPE " << name << " "
           << (v.kind == MetricKind::Counter ? "counter" : "gauge")
           << "\n"
           << name << " ";
        jsonNumber(os, v.value);  // integral values print bare
        os << "\n";
    }
}

std::vector<MetricsRegistry::SeriesSummary>
MetricsRegistry::summarize() const
{
    MutexLock lock(mutex_);
    std::map<std::string, SeriesSummary> by_name;
    for (const Snapshot &snap : snapshots_) {
        for (const Value &v : snap.values) {
            SeriesSummary &s = by_name[v.name];
            if (s.samples == 0) {
                s.name = v.name;
                s.kind = v.kind;
                s.min = s.max = v.value;
            } else {
                s.min = std::min(s.min, v.value);
                s.max = std::max(s.max, v.value);
            }
            // mean accumulates the sum until read-out below.
            s.mean += v.value;
            s.last = v.value;
            ++s.samples;
        }
    }
    std::vector<SeriesSummary> out;
    out.reserve(by_name.size());
    for (auto &[name, s] : by_name) {
        s.mean = s.samples ? s.mean / static_cast<double>(s.samples)
                           : 0.0;
        out.push_back(std::move(s));
    }
    return out;
}

namespace {

/** The inert default: permanently disabled, accepts no samples. */
MetricsRegistry &
inertMetrics()
{
    static MetricsRegistry inert(1);
    return inert;
}

std::atomic<MetricsRegistry *> g_metrics{nullptr};

} // namespace

MetricsRegistry *
globalMetrics()
{
    MetricsRegistry *registry = g_metrics.load(std::memory_order_acquire);
    return registry ? registry : &inertMetrics();
}

void
setGlobalMetrics(MetricsRegistry *registry)
{
    g_metrics.store(registry, std::memory_order_release);
}

} // namespace prime::telemetry
