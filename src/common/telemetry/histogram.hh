/**
 * @file
 * Log-bucketed latency/value histogram for the stats package.
 *
 * Buckets are spaced logarithmically: each power-of-two decade is split
 * into kSubBuckets linear sub-buckets, bounding the relative error of a
 * reported quantile by 1/kSubBuckets (12.5%) while keeping the bucket
 * array small and the sample path branch-free (frexp + two integer
 * ops).  Non-positive samples land in a dedicated underflow bucket so
 * zero-latency events stay visible without distorting the log range.
 */

#ifndef PRIME_COMMON_TELEMETRY_HISTOGRAM_HH
#define PRIME_COMMON_TELEMETRY_HISTOGRAM_HH

#include <cstdint>
#include <vector>

namespace prime::telemetry {

/** Accumulating histogram with p50/p95/p99-style quantile queries. */
class Histogram
{
  public:
    /** Linear sub-buckets per power of two. */
    static constexpr int kSubBuckets = 8;
    /** Smallest representable exponent (values below go to underflow). */
    static constexpr int kMinExp = -31;
    /** Largest representable exponent (values above clamp to the top). */
    static constexpr int kMaxExp = 64;
    /** Bucket 0 is the underflow bucket (v <= 0 or v < 2^(kMinExp-1)). */
    static constexpr int kBucketCount =
        1 + (kMaxExp - kMinExp) * kSubBuckets;

    Histogram();

    /** Record one value. */
    void sample(double value);

    /**
     * Fold another histogram's samples into this one (bucket counts,
     * count/sum and exact extrema all combine).  The shard-aggregation
     * primitive: per-thread / per-bank histograms accumulate lock-free
     * on their owner and merge into the published histogram afterwards.
     */
    void merge(const Histogram &other);

    /** Reset to empty. */
    void reset();

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    /** Exact extrema of the recorded samples (0 when empty). */
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /**
     * Value at quantile @p q in [0, 1], approximated by the midpoint of
     * the containing bucket and clamped to the exact [min, max] range.
     * Returns 0 on an empty histogram.
     */
    double quantile(double q) const;

    /** The raw bucket counters (index 0 = underflow). */
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }

    /** Bucket index a value falls into. */
    static int bucketIndex(double value);
    /** Inclusive lower bound of a bucket (0 for the underflow bucket). */
    static double bucketLowerBound(int index);
    /** Exclusive upper bound of a bucket. */
    static double bucketUpperBound(int index);

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace prime::telemetry

#endif // PRIME_COMMON_TELEMETRY_HISTOGRAM_HH
