#include "common/telemetry/histogram.hh"

#include <algorithm>
#include <cmath>

namespace prime::telemetry {

Histogram::Histogram() : buckets_(kBucketCount, 0)
{
}

int
Histogram::bucketIndex(double value)
{
    if (!(value > 0.0))
        return 0;
    int exp = 0;
    const double frac = std::frexp(value, &exp);  // frac in [0.5, 1)
    if (exp < kMinExp)
        return 0;
    if (exp > kMaxExp)
        return kBucketCount - 1;
    int sub = static_cast<int>((frac - 0.5) * 2.0 * kSubBuckets);
    sub = std::clamp(sub, 0, kSubBuckets - 1);
    return 1 + (exp - kMinExp) * kSubBuckets + sub;
}

double
Histogram::bucketLowerBound(int index)
{
    if (index <= 0)
        return 0.0;
    const int b = index - 1;
    const int exp = kMinExp + b / kSubBuckets;
    const int sub = b % kSubBuckets;
    return std::ldexp(0.5 + sub / (2.0 * kSubBuckets), exp);
}

double
Histogram::bucketUpperBound(int index)
{
    if (index <= 0)
        return std::ldexp(0.5, kMinExp);  // smallest representable value
    return bucketLowerBound(index + 1);
}

void
Histogram::sample(double value)
{
    buckets_[static_cast<std::size_t>(bucketIndex(value))] += 1;
    sum_ += value;
    count_ += 1;
    if (count_ == 1) {
        min_ = max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
}

void
Histogram::merge(const Histogram &other)
{
    if (other.count_ == 0)
        return;
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = 0;
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

double
Histogram::quantile(double q) const
{
    if (count_ == 0)
        return 0.0;
    // Explicit comparisons instead of std::clamp: NaN passes through
    // clamp unchanged (its comparisons are all false) and would reach
    // the uint64 cast below as undefined behavior.  !(q > 0) routes
    // NaN, zero and negatives to the minimum rank.
    if (!(q > 0.0))
        q = 0.0;
    else if (q > 1.0)
        q = 1.0;
    // Nearest-rank: the value below which at least ceil(q * count)
    // samples fall.
    const std::uint64_t rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(std::ceil(q * count_)));
    // The first and last ranks are the exact extrema; skip the bucket
    // approximation (p0 = min, p100 = max).
    if (rank <= 1)
        return min_;
    if (rank >= count_)
        return max_;
    std::uint64_t cum = 0;
    for (int i = 0; i < kBucketCount; ++i) {
        cum += buckets_[static_cast<std::size_t>(i)];
        if (cum >= rank) {
            const double mid =
                0.5 * (bucketLowerBound(i) + bucketUpperBound(i));
            return std::clamp(mid, min_, max_);
        }
    }
    return max_;
}

} // namespace prime::telemetry
