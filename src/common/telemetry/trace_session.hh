/**
 * @file
 * Wall-clock span tracing in the Chrome trace_event format (open the
 * output in Perfetto / chrome://tracing).
 *
 * A TraceSession records complete spans ("X" events) and instant events
 * ("i") into per-thread lanes: each recording thread appends to its own
 * lane, so instrumentation in the thread-pool fan-out paths neither
 * serializes the workers nor interleaves their events.  Lanes are
 * created lazily under a mutex on a thread's first event and become
 * that thread's Perfetto track.
 *
 * Instrumentation uses the PRIME_SPAN RAII macro against the
 * process-wide session pointer (globalTrace()); a disabled session
 * reduces a span to one pointer load and branch, cheap enough to leave
 * compiled into the simulator's command/transfer layers permanently.
 * The macro intentionally is NOT placed in per-element kernels (the
 * crossbar MVM inner loops): spans are command/transfer granular.
 *
 * Threading / memory-ordering contract (see also ARCHITECTURE.md):
 *  - A lane's events live in fixed-size chunks that never move once
 *    allocated; the owning thread is the only writer.  It publishes
 *    each event with a release store of the lane's `committed`
 *    counter after the slot is fully written.
 *  - Readers (eventCount, laneCount, writeChromeTrace) take the
 *    session mutex (stabilizing the lane and chunk lists) and load
 *    `committed` with acquire, then touch only the published prefix.
 *    They may therefore run concurrently with recording threads and
 *    observe a consistent snapshot.
 *  - enable(), disable() and clear() still must not race with
 *    recording threads: they rewrite state the fast path reads without
 *    synchronization (the epoch, and each lane's committed counter).
 *    Callers quiesce the pool first, which every current call site
 *    does by toggling/clearing around parallelFor rather than across
 *    it.
 */

#ifndef PRIME_COMMON_TELEMETRY_TRACE_SESSION_HH
#define PRIME_COMMON_TELEMETRY_TRACE_SESSION_HH

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.hh"
#include "common/thread_annotations.hh"

namespace prime::telemetry {

/** One recorded trace event. */
struct TraceEvent
{
    std::string name;
    const char *category = "prime";
    char phase = 'X';           ///< 'X' complete span, 'i' instant
    std::int64_t tsNs = 0;      ///< start, ns since session epoch
    std::int64_t durNs = 0;     ///< span duration ('X' only)
};

/** A begin/end span and instant-event recorder with per-thread lanes. */
class TraceSession
{
  public:
    TraceSession();
    ~TraceSession() = default;

    TraceSession(const TraceSession &) = delete;
    TraceSession &operator=(const TraceSession &) = delete;

    /** Start accepting events (timestamps restart at zero). */
    void enable();
    /** Stop accepting events (buffers are kept for export). */
    void disable();
    bool enabled() const
    {
        // Acquire pairs with the release in enable(): seeing "enabled"
        // implies seeing the epoch written just before it.
        return enabled_.load(std::memory_order_acquire);
    }

    /** Nanoseconds since the session epoch. */
    std::int64_t now() const;

    /** Record a completed span on the calling thread's lane. */
    void completeSpan(std::string name, const char *category,
                      std::int64_t start_ns, std::int64_t end_ns);

    /** Record an instant event on the calling thread's lane. */
    void instant(std::string name, const char *category);

    /**
     * Total published events over all lanes.  Safe to call while other
     * threads are recording: counts each lane's committed prefix.
     */
    std::size_t eventCount() const;

    /** Number of lanes (threads that recorded at least one event). */
    std::size_t laneCount() const;

    /**
     * Drop all recorded events (lanes are kept: recording threads may
     * hold cached pointers to them).  Must not race with recording.
     */
    void clear();

    /**
     * Write the Chrome trace_event JSON document.  Safe to call while
     * other threads are recording: exports each lane's committed
     * prefix.
     */
    void writeChromeTrace(std::ostream &os) const;

  private:
    /** Events per chunk; chunks never move or shrink once allocated. */
    static constexpr std::size_t kChunkSize = 256;

    struct Lane
    {
        int tid = 0;
        std::string name;
        std::thread::id threadId;
        /**
         * Number of fully-written events.  Written only by the owning
         * thread (release); readers load with acquire and touch only
         * slots below the loaded value.
         */
        std::atomic<std::uint64_t> committed{0};
        /**
         * Chunked event storage.  The vector itself grows only under
         * the session mutex (by the owning thread); published slots
         * are immutable until clear().  Deliberately NOT
         * PRIME_GUARDED_BY: the owner reads its own chunk list
         * lock-free (single-writer), and readers touch only the
         * committed prefix -- the publication protocol above, not a
         * lock, is what makes those accesses safe.
         */
        std::vector<std::unique_ptr<std::array<TraceEvent, kChunkSize>>>
            chunks;
    };

    /** The calling thread's lane (created on first use). */
    Lane &lane();

    /** Owner-thread append: write the slot, then publish (release). */
    void append(TraceEvent event);

    const std::uint64_t serial_;  ///< process-unique session identity
    /** Written by enable()/clear() under mutex_ but read lock-free on
     *  the now() fast path: deliberately NOT PRIME_GUARDED_BY -- the
     *  quiesce-before-toggle contract above, not a lock, covers the
     *  reads. */
    std::chrono::steady_clock::time_point epoch_;
    std::atomic<bool> enabled_{false};
    mutable Mutex mutex_;  ///< guards lanes_ and chunk-list growth
    std::vector<std::unique_ptr<Lane>> lanes_ PRIME_GUARDED_BY(mutex_);
};

/**
 * The process-wide trace session used by the PRIME_SPAN instrumentation
 * sites.  Never null: defaults to an inert, permanently disabled
 * session until setGlobalTrace installs a real one.
 */
TraceSession *globalTrace();

/** Install (or, with nullptr, uninstall) the process-wide session. */
void setGlobalTrace(TraceSession *session);

/**
 * Name the calling thread's lane in traces recorded from here on
 * (e.g. "pool-worker-3").  Applies to lanes created after the call.
 */
void setTraceThreadName(const std::string &name);

/** RAII span: records [construction, destruction) when enabled. */
class ScopedSpan
{
  public:
    /** Static-string name: free when the session is disabled. */
    ScopedSpan(TraceSession *session, const char *name,
               const char *category = "prime")
        : session_(session && session->enabled() ? session : nullptr),
          name_(name), category_(category)
    {
        if (session_)
            start_ = session_->now();
    }

    /** Dynamic name (built by the caller; for cold call sites only). */
    ScopedSpan(TraceSession *session, std::string name,
               const char *category = "prime")
        : session_(session && session->enabled() ? session : nullptr),
          name_(nullptr), dynamicName_(std::move(name)),
          category_(category)
    {
        if (session_)
            start_ = session_->now();
    }

    ~ScopedSpan()
    {
        if (session_)
            session_->completeSpan(name_ ? std::string(name_)
                                         : std::move(dynamicName_),
                                   category_, start_, session_->now());
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    TraceSession *session_;
    const char *name_;
    std::string dynamicName_;
    const char *category_;
    std::int64_t start_ = 0;
};

} // namespace prime::telemetry

#define PRIME_SPAN_CONCAT2(a, b) a##b
#define PRIME_SPAN_CONCAT(a, b) PRIME_SPAN_CONCAT2(a, b)

/**
 * PRIME_SPAN(session, "name") / PRIME_SPAN(session, "name", "category"):
 * trace the enclosing scope as one span.  A disabled session costs a
 * single branch.
 */
#define PRIME_SPAN(...) \
    ::prime::telemetry::ScopedSpan PRIME_SPAN_CONCAT( \
        prime_scoped_span_, __COUNTER__)(__VA_ARGS__)

#endif // PRIME_COMMON_TELEMETRY_TRACE_SESSION_HH
