#include "common/telemetry/json.hh"

#include <cmath>
#include <cstdio>

namespace prime::telemetry {

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
jsonString(std::ostream &os, std::string_view s)
{
    os << '"' << jsonEscape(s) << '"';
}

void
jsonNumber(std::ostream &os, double value)
{
    if (!std::isfinite(value)) {
        os << "null";
        return;
    }
    if (value == std::nearbyint(value) &&
        std::fabs(value) < 9.007199254740992e15) {  // 2^53: exact integers
        os << static_cast<long long>(value);
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    os << buf;
}

} // namespace prime::telemetry
