/**
 * @file
 * Minimal JSON emission helpers shared by the stats serializer and the
 * Chrome-trace writer.  Writing only -- parsing is left to the tools
 * that consume the files (Perfetto, python3 -m json.tool, tests).
 */

#ifndef PRIME_COMMON_TELEMETRY_JSON_HH
#define PRIME_COMMON_TELEMETRY_JSON_HH

#include <ostream>
#include <string>
#include <string_view>

namespace prime::telemetry {

/** Escape a string for embedding inside JSON double quotes. */
std::string jsonEscape(std::string_view s);

/** Write a quoted, escaped JSON string. */
void jsonString(std::ostream &os, std::string_view s);

/**
 * Write a JSON number: integral doubles print without a fraction,
 * everything else with enough digits to round-trip; NaN/Inf (not
 * representable in JSON) degrade to null.
 */
void jsonNumber(std::ostream &os, double value);

} // namespace prime::telemetry

#endif // PRIME_COMMON_TELEMETRY_JSON_HH
