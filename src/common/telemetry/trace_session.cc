#include "common/telemetry/trace_session.hh"

#include <cstdio>

#include "common/telemetry/json.hh"

namespace prime::telemetry {

namespace {

/** Process-unique session serial numbers (0 is reserved: "no lane"). */
std::atomic<std::uint64_t> g_session_serial{0};

/** The thread's preferred lane name, snapshotted at lane creation. */
thread_local std::string tls_thread_name;

/** One-entry lane cache: valid while the serial matches the session. */
struct TlsLaneRef
{
    std::uint64_t serial = 0;
    void *lane = nullptr;
};
thread_local TlsLaneRef tls_lane;

std::atomic<TraceSession *> g_trace{nullptr};

} // namespace

TraceSession::TraceSession()
    : serial_(g_session_serial.fetch_add(1, std::memory_order_relaxed) + 1),
      epoch_(std::chrono::steady_clock::now())
{
}

void
TraceSession::enable()
{
    {
        MutexLock lock(mutex_);
        epoch_ = std::chrono::steady_clock::now();
    }
    // Release pairs with the acquire in enabled(): a thread that sees
    // the session enabled also sees the new epoch.
    enabled_.store(true, std::memory_order_release);
}

void
TraceSession::disable()
{
    enabled_.store(false, std::memory_order_release);
}

std::int64_t
TraceSession::now() const
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

TraceSession::Lane &
TraceSession::lane()
{
    if (tls_lane.serial == serial_ && tls_lane.lane)
        return *static_cast<Lane *>(tls_lane.lane);

    MutexLock lock(mutex_);
    const std::thread::id id = std::this_thread::get_id();
    for (const auto &l : lanes_) {
        if (l->threadId == id) {
            tls_lane = {serial_, l.get()};
            return *l;
        }
    }
    auto l = std::make_unique<Lane>();
    l->tid = static_cast<int>(lanes_.size());
    l->threadId = id;
    l->name = !tls_thread_name.empty()
                  ? tls_thread_name
                  : (l->tid == 0 ? std::string("main")
                                 : "thread-" + std::to_string(l->tid));
    lanes_.push_back(std::move(l));
    tls_lane = {serial_, lanes_.back().get()};
    return *lanes_.back();
}

void
TraceSession::append(TraceEvent event)
{
    Lane &l = lane();
    // The owning thread is the sole writer of `committed`, so a
    // relaxed self-read is exact.
    const std::uint64_t n = l.committed.load(std::memory_order_relaxed);
    const std::size_t chunk = static_cast<std::size_t>(n / kChunkSize);
    if (chunk == l.chunks.size()) {
        // Growing the chunk list is the only append step a concurrent
        // reader could observe mid-flight; serialize it with them.
        MutexLock lock(mutex_);
        l.chunks.push_back(
            std::make_unique<std::array<TraceEvent, kChunkSize>>());
    }
    (*l.chunks[chunk])[static_cast<std::size_t>(n % kChunkSize)] =
        std::move(event);
    // Publish: readers that acquire-load `committed` and see n + 1 also
    // see the fully-written slot above.
    l.committed.store(n + 1, std::memory_order_release);
}

void
TraceSession::completeSpan(std::string name, const char *category,
                           std::int64_t start_ns, std::int64_t end_ns)
{
    if (!enabled())
        return;
    TraceEvent e;
    e.name = std::move(name);
    e.category = category;
    e.phase = 'X';
    e.tsNs = start_ns;
    e.durNs = end_ns > start_ns ? end_ns - start_ns : 0;
    append(std::move(e));
}

void
TraceSession::instant(std::string name, const char *category)
{
    if (!enabled())
        return;
    TraceEvent e;
    e.name = std::move(name);
    e.category = category;
    e.phase = 'i';
    e.tsNs = now();
    append(std::move(e));
}

std::size_t
TraceSession::eventCount() const
{
    MutexLock lock(mutex_);
    std::size_t n = 0;
    for (const auto &l : lanes_)
        n += l->committed.load(std::memory_order_acquire);
    return n;
}

std::size_t
TraceSession::laneCount() const
{
    MutexLock lock(mutex_);
    return lanes_.size();
}

void
TraceSession::clear()
{
    MutexLock lock(mutex_);
    // Keep the lanes (recording threads may hold cached pointers) and
    // their chunks (capacity reuse); only the committed prefixes are
    // dropped.  Writing another thread's counter is why clear() must
    // not race with recording.
    for (const auto &l : lanes_)
        l->committed.store(0, std::memory_order_release);
    epoch_ = std::chrono::steady_clock::now();
}

void
TraceSession::writeChromeTrace(std::ostream &os) const
{
    MutexLock lock(mutex_);
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    bool first = true;
    auto sep = [&] {
        if (!first)
            os << ",\n";
        first = false;
    };
    char buf[64];
    for (const auto &l : lanes_) {
        sep();
        os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << l->tid
           << ",\"name\":\"thread_name\",\"args\":{\"name\":";
        jsonString(os, l->name);
        os << "}}";
    }
    for (const auto &l : lanes_) {
        const std::uint64_t committed =
            l->committed.load(std::memory_order_acquire);
        for (std::uint64_t i = 0; i < committed; ++i) {
            const TraceEvent &e =
                (*l->chunks[static_cast<std::size_t>(i / kChunkSize)])
                    [static_cast<std::size_t>(i % kChunkSize)];
            sep();
            os << "{\"name\":";
            jsonString(os, e.name);
            os << ",\"cat\":";
            jsonString(os, e.category);
            os << ",\"ph\":\"" << e.phase << "\",\"pid\":1,\"tid\":"
               << l->tid << ",\"ts\":";
            // Chrome ts/dur are microseconds; keep ns resolution.
            std::snprintf(buf, sizeof(buf), "%.3f", e.tsNs / 1000.0);
            os << buf;
            if (e.phase == 'X') {
                std::snprintf(buf, sizeof(buf), "%.3f",
                              e.durNs / 1000.0);
                os << ",\"dur\":" << buf;
            } else if (e.phase == 'i') {
                os << ",\"s\":\"t\"";
            }
            os << "}";
        }
    }
    os << "\n]}\n";
}

TraceSession *
globalTrace()
{
    static TraceSession inert;  // permanently disabled default
    TraceSession *t = g_trace.load(std::memory_order_acquire);
    return t ? t : &inert;
}

void
setGlobalTrace(TraceSession *session)
{
    g_trace.store(session, std::memory_order_release);
}

void
setTraceThreadName(const std::string &name)
{
    tls_thread_name = name;
}

} // namespace prime::telemetry
