#include "common/fixed_point.hh"

#include <algorithm>
#include <vector>
#include <cmath>

#include "common/logging.hh"

namespace prime {

double
DfxFormat::step() const
{
    return std::ldexp(1.0, -fracLength);
}

std::int64_t
DfxFormat::maxMantissa() const
{
    return (std::int64_t{1} << (bits - 1)) - 1;
}

std::int64_t
DfxFormat::minMantissa() const
{
    return -(std::int64_t{1} << (bits - 1));
}

double
DfxFormat::maxValue() const
{
    return static_cast<double>(maxMantissa()) * step();
}

double
DfxFormat::minValue() const
{
    return static_cast<double>(minMantissa()) * step();
}

DfxFormat
DfxFormat::choose(std::span<const double> data, int bits,
                  double saturate_fraction)
{
    PRIME_ASSERT(bits >= 1 && bits <= 32, "bits=", bits);
    PRIME_ASSERT(saturate_fraction >= 0.0 && saturate_fraction < 0.5,
                 "saturate_fraction=", saturate_fraction);
    double max_abs = 0.0;
    if (saturate_fraction > 0.0 && data.size() > 8) {
        std::vector<double> mags(data.begin(), data.end());
        for (double &m : mags)
            m = std::fabs(m);
        const std::size_t keep = static_cast<std::size_t>(
            (1.0 - saturate_fraction) * (mags.size() - 1));
        std::nth_element(mags.begin(), mags.begin() + keep, mags.end());
        max_abs = mags[keep];
    } else {
        for (double x : data)
            max_abs = std::max(max_abs, std::fabs(x));
    }

    DfxFormat fmt;
    fmt.bits = bits;
    if (max_abs == 0.0) {
        fmt.fracLength = bits - 1;
        return fmt;
    }
    // Integer bits needed to hold max_abs with a sign bit; the fraction
    // length is whatever is left.  frexp gives max_abs = m * 2^e with
    // m in [0.5, 1), so values below 2^e need e integer bits.
    int exp = 0;
    std::frexp(max_abs, &exp);
    fmt.fracLength = bits - 1 - exp;
    return fmt;
}

std::int64_t
dfxQuantize(double x, const DfxFormat &fmt)
{
    double scaled = std::ldexp(x, fmt.fracLength);
    double rounded = std::nearbyint(scaled);
    double lo = static_cast<double>(fmt.minMantissa());
    double hi = static_cast<double>(fmt.maxMantissa());
    rounded = std::clamp(rounded, lo, hi);
    return static_cast<std::int64_t>(rounded);
}

double
dfxDequantize(std::int64_t mantissa, const DfxFormat &fmt)
{
    return std::ldexp(static_cast<double>(mantissa), -fmt.fracLength);
}

double
dfxRound(double x, const DfxFormat &fmt)
{
    return dfxDequantize(dfxQuantize(x, fmt), fmt);
}

DfxFormat
dfxRoundVector(std::vector<double> &data, int bits,
               double saturate_fraction)
{
    DfxFormat fmt = DfxFormat::choose(data, bits, saturate_fraction);
    for (double &x : data)
        x = dfxRound(x, fmt);
    return fmt;
}

} // namespace prime
