/**
 * @file
 * Dynamic fixed-point arithmetic (Courbariaux et al., "Low precision
 * storage for deep learning" [68] in the PRIME paper).
 *
 * A dynamic fixed-point group is a set of values sharing one scaling
 * factor 2^-fracLength; each value is an n-bit two's-complement mantissa.
 * PRIME represents NN inputs, weights and activations per layer in this
 * format (Section III-D of the paper), choosing the fraction length per
 * tensor so the largest magnitude just fits.
 */

#ifndef PRIME_COMMON_FIXED_POINT_HH
#define PRIME_COMMON_FIXED_POINT_HH

#include <cstdint>
#include <span>
#include <vector>

namespace prime {

/**
 * The shared exponent/width descriptor of a dynamic fixed-point group.
 */
struct DfxFormat
{
    /** Total mantissa bits including sign (1..32). */
    int bits = 8;
    /** Fraction length: value = mantissa * 2^-fracLength. */
    int fracLength = 0;

    /** Largest representable value. */
    double maxValue() const;
    /** Smallest (most negative) representable value. */
    double minValue() const;
    /** Quantization step 2^-fracLength. */
    double step() const;
    /** Largest positive mantissa (2^(bits-1) - 1). */
    std::int64_t maxMantissa() const;
    /** Most negative mantissa (-2^(bits-1)). */
    std::int64_t minMantissa() const;

    /**
     * Pick the fraction length so the largest |x| in @p data fits without
     * saturation (the paper's per-layer dynamic scaling).  For all-zero
     * input the format defaults to fracLength = bits - 1.
     *
     * @param saturate_fraction Courbariaux-style overflow tolerance: the
     *        format covers the (1 - saturate_fraction) magnitude
     *        quantile instead of the strict maximum, trading a few
     *        clipped outliers for a finer step (a large win at <= 4
     *        bits).
     */
    static DfxFormat choose(std::span<const double> data, int bits,
                            double saturate_fraction = 0.0);
};

/** Quantize one value: round-to-nearest mantissa with saturation. */
std::int64_t dfxQuantize(double x, const DfxFormat &fmt);

/** Mantissa back to real value. */
double dfxDequantize(std::int64_t mantissa, const DfxFormat &fmt);

/** Round-trip a value through the format (quantize then dequantize). */
double dfxRound(double x, const DfxFormat &fmt);

/** Round-trip a whole vector in place; returns the chosen format. */
DfxFormat dfxRoundVector(std::vector<double> &data, int bits,
                         double saturate_fraction = 0.0);

} // namespace prime

#endif // PRIME_COMMON_FIXED_POINT_HH
