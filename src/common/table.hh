/**
 * @file
 * ASCII table formatter used by the benchmark harnesses to print the
 * paper's tables and figure series in a readable, diffable layout.
 */

#ifndef PRIME_COMMON_TABLE_HH
#define PRIME_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace prime {

/**
 * Collects rows of strings with a header and renders them column-aligned.
 * Numeric helpers format with a consistent precision so figure outputs are
 * stable across runs.
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Begin a new row; subsequent cell() calls fill it left to right. */
    Table &row();

    /** Append a string cell to the current row. */
    Table &cell(const std::string &value);

    /** Append a formatted floating-point cell (fixed, @p precision digits). */
    Table &cell(double value, int precision = 2);

    /** Append an integer cell. */
    Table &cell(long long value);

    /** Append a "1234.5x" style speedup cell with adaptive precision. */
    Table &speedupCell(double value);

    /** Append a percentage cell ("12.3%"). */
    Table &percentCell(double fraction, int precision = 1);

    /** Number of data rows so far. */
    std::size_t rowCount() const { return rows_.size(); }

    /** Render with a title line, header, separator and rows. */
    void print(std::ostream &os, const std::string &title = "") const;

    /** Render as RFC-4180-ish CSV (quotes cells containing commas). */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double as "123.4" / "1.23e+06" style compact string. */
std::string formatCompact(double value, int precision = 3);

} // namespace prime

#endif // PRIME_COMMON_TABLE_HH
