/**
 * @file
 * Deterministic random-number utilities.
 *
 * Every stochastic element of the model (device variation, synthetic data,
 * workload jitter) draws from an explicitly seeded Rng so that tests and
 * benchmark tables are bit-reproducible across runs and machines.
 */

#ifndef PRIME_COMMON_RNG_HH
#define PRIME_COMMON_RNG_HH

#include <cstdint>
#include <random>
#include <vector>

namespace prime {

/**
 * A seeded pseudo-random source wrapping std::mt19937_64 with the handful
 * of draw shapes the model needs.
 */
class Rng
{
  public:
    /** Construct with an explicit seed (default fixed for reproducibility). */
    explicit Rng(std::uint64_t seed = 0x5eed5eedULL) : engine_(seed) {}

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo = 0.0, double hi = 1.0)
    {
        std::uniform_real_distribution<double> d(lo, hi);
        return d(engine_);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    uniformInt(std::int64_t lo, std::int64_t hi)
    {
        std::uniform_int_distribution<std::int64_t> d(lo, hi);
        return d(engine_);
    }

    /** Gaussian draw. */
    double
    gaussian(double mean = 0.0, double stddev = 1.0)
    {
        std::normal_distribution<double> d(mean, stddev);
        return d(engine_);
    }

    /** Bernoulli draw. */
    bool
    bernoulli(double p)
    {
        std::bernoulli_distribution d(p);
        return d(engine_);
    }

    /** Fisher-Yates shuffle of an index vector [0, n). */
    std::vector<std::size_t>
    permutation(std::size_t n)
    {
        std::vector<std::size_t> idx(n);
        for (std::size_t i = 0; i < n; ++i)
            idx[i] = i;
        for (std::size_t i = n; i > 1; --i) {
            std::size_t j = static_cast<std::size_t>(uniformInt(0, i - 1));
            std::swap(idx[i - 1], idx[j]);
        }
        return idx;
    }

    /** Fork a child generator with a derived seed (stream splitting). */
    Rng
    fork()
    {
        return Rng(engine_());
    }

    /** Access the underlying engine (for std distributions). */
    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace prime

#endif // PRIME_COMMON_RNG_HH
