/**
 * @file
 * Clang Thread Safety Analysis attribute macros: the compile-time side
 * of the project's lock contracts.  Every annotation expands to a Clang
 * `__attribute__` under Clang and to nothing elsewhere, so the gcc
 * container builds exactly the code it always built while the
 * `clang-tsa` CMake preset (-Werror=thread-safety -Wthread-safety-beta)
 * turns the documented contracts into build failures.
 *
 * Usage model (the capability style from the Clang TSA docs):
 *  - A lock type is a *capability*: prime::Mutex in common/mutex.hh is
 *    the project's annotated capability type; raw std::mutex members
 *    are banned from src/ by the prime_lint `tsa-raw-mutex` rule.
 *  - Data protected by a lock is declared PRIME_GUARDED_BY(mutex_);
 *    pointees are PRIME_PT_GUARDED_BY(mutex_).
 *  - A function that must be called with a lock held declares
 *    PRIME_REQUIRES(mutex_); one that takes and drops the lock itself
 *    declares nothing (the scoped guards do the tracking); one that
 *    must NOT be entered with the lock held (it will acquire it)
 *    declares PRIME_EXCLUDES(mutex_).
 *  - The rare deliberate escape is PRIME_NO_THREAD_SAFETY_ANALYSIS and
 *    must carry a comment explaining why the analysis cannot see the
 *    contract (quiescent-snapshot accessors, single-writer
 *    publication protocols).
 *
 * Style guide: see CONTRIBUTING.md "Lock contracts (Clang TSA)".
 */

#ifndef PRIME_COMMON_THREAD_ANNOTATIONS_HH
#define PRIME_COMMON_THREAD_ANNOTATIONS_HH

#if defined(__clang__)
#define PRIME_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PRIME_THREAD_ANNOTATION(x)  // no-op: GCC has no TSA
#endif

/** Marks a type as a lockable capability ("mutex", "role", ...). */
#define PRIME_CAPABILITY(x) PRIME_THREAD_ANNOTATION(capability(x))

/** Marks an RAII type whose lifetime holds a capability. */
#define PRIME_SCOPED_CAPABILITY PRIME_THREAD_ANNOTATION(scoped_lockable)

/** Data member readable/writable only with the capability held. */
#define PRIME_GUARDED_BY(x) PRIME_THREAD_ANNOTATION(guarded_by(x))

/** Pointer member whose *pointee* is protected by the capability. */
#define PRIME_PT_GUARDED_BY(x) PRIME_THREAD_ANNOTATION(pt_guarded_by(x))

/** Caller must hold the capability (exclusively) around the call. */
#define PRIME_REQUIRES(...) \
    PRIME_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Caller must hold the capability at least shared. */
#define PRIME_REQUIRES_SHARED(...) \
    PRIME_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/** Function acquires the capability and returns holding it. */
#define PRIME_ACQUIRE(...) \
    PRIME_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

#define PRIME_ACQUIRE_SHARED(...) \
    PRIME_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/** Function releases the capability held on entry. */
#define PRIME_RELEASE(...) \
    PRIME_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

#define PRIME_RELEASE_SHARED(...) \
    PRIME_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/** Function acquires the capability iff it returns @p succ. */
#define PRIME_TRY_ACQUIRE(...) \
    PRIME_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Caller must NOT hold the capability (the function acquires it). */
#define PRIME_EXCLUDES(...) \
    PRIME_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Asserts (at runtime, by contract) that the capability is held. */
#define PRIME_ASSERT_CAPABILITY(x) \
    PRIME_THREAD_ANNOTATION(assert_capability(x))

/** Function returns a reference to the named capability. */
#define PRIME_RETURN_CAPABILITY(x) \
    PRIME_THREAD_ANNOTATION(lock_returned(x))

/**
 * Deliberate analysis escape.  Policy: every use carries an adjacent
 * comment naming the protocol that makes the unchecked access safe
 * (CONTRIBUTING.md "Lock contracts").
 */
#define PRIME_NO_THREAD_SAFETY_ANALYSIS \
    PRIME_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif // PRIME_COMMON_THREAD_ANNOTATIONS_HH
