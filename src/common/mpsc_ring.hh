/**
 * @file
 * A fixed-capacity multi-producer / single-consumer ring queue: the
 * serving engine's ingress primitive.  Any number of request threads
 * push concurrently; exactly one scheduler thread pops.  Like SpscRing
 * the ring never allocates after construction, but the single-writer
 * tail counter of the SPSC design cannot survive multiple producers,
 * so publication moves from the shared cursor to a per-slot ticket
 * (the bounded-MPMC idiom of Vyukov's queue, restricted here to one
 * consumer):
 *
 *  - Every slot carries a sequence counter.  A producer claims ticket
 *    t by CAS-advancing tail_ from t to t+1 -- legal only while the
 *    slot's sequence reads exactly t (slot free for lap t/capacity).
 *    The claim is slot-local: producers that claimed different tickets
 *    fill different slots with no further coordination.
 *  - The producer fully writes the slot, then publishes it with a
 *    release store of sequence = t+1.  The consumer's acquire load of
 *    the sequence is the matching edge: seeing t+1 guarantees the
 *    value is visible (the SpscRing acquire/release contract, moved
 *    from the tail counter onto the slot).
 *  - The consumer pops ticket h when the head slot's sequence reads
 *    h+1, moves the value out, and retires the slot with a release
 *    store of sequence = h+capacity -- the value producers of lap
 *    (h/capacity)+1 wait for before reusing the slot.  head_ itself
 *    has a single writer (the consumer) and is only read by
 *    approxSize(), so it stays relaxed.
 *  - tryPush fails (returning false, value untouched) when the target
 *    slot is still occupied a full lap later: the queue is full, the
 *    admission-control signal.  A slot mid-publication (claimed, not
 *    yet sequence-stamped) also reads as full to a producer a lap
 *    ahead; that conservative answer only occurs within one slot of
 *    capacity.
 *  - tryPop fails when the head slot's sequence still reads h: either
 *    the queue is empty or the head producer has not published yet --
 *    indistinguishable to the consumer, and both mean "nothing
 *    consumable now".
 *
 * Progress: tryPush is lock-free (a stalled producer can delay only
 * the slot it claimed, not other producers' slots; a full ring fails
 * fast), tryPop is wait-free.  Per-producer FIFO order holds: two
 * pushes by the same thread take increasing tickets, so they pop in
 * push order.  Cross-producer order is the ticket order, i.e. the
 * CAS-resolution order of concurrent pushes.
 */

#ifndef PRIME_COMMON_MPSC_RING_HH
#define PRIME_COMMON_MPSC_RING_HH

#include <atomic>
#include <cstddef>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace prime {

/** Bounded lock-free MPSC FIFO of movable values. */
template <typename T>
class MpscRing
{
    // Same slot contract as SpscRing: values cross threads by move
    // assignment ordered by each slot's sequence ticket, never by
    // memcpy, so trivial copyability is deliberately NOT required
    // (serve::Request carries a Tensor and a std::function).
    static_assert(std::is_default_constructible_v<T>,
                  "MpscRing slots are preallocated empty");
    static_assert(std::is_move_constructible_v<T> &&
                      std::is_move_assignable_v<T>,
                  "MpscRing hands values across threads by move");

  public:
    /**
     * A ring holding up to @p capacity values.  A capacity below 2 is
     * rounded up: with a single slot the ticket scheme cannot tell
     * "occupied since lap 0" (sequence = 0+1) from "retired, free for
     * ticket 1" (sequence = 0+capacity = 1) -- the classic bounded-MPMC
     * minimum-size constraint.
     */
    explicit MpscRing(std::size_t capacity)
        : slots_(capacity < 2 ? 2 : capacity)
    {
        PRIME_ASSERT(capacity >= 1, "MPSC ring needs capacity >= 1");
        for (std::size_t i = 0; i < slots_.size(); ++i)
            slots_[i].sequence.store(i, std::memory_order_relaxed);
    }

    MpscRing(const MpscRing &) = delete;
    MpscRing &operator=(const MpscRing &) = delete;

    /** Values the ring can hold. */
    std::size_t capacity() const { return slots_.size(); }

    /**
     * Producer side (any thread): move @p value in and return true, or
     * return false (leaving @p value untouched) when the ring is full.
     */
    bool
    tryPush(T &&value)
    {
        std::size_t ticket = tail_.load(std::memory_order_relaxed);
        for (;;) {
            Slot &slot = slots_[ticket % slots_.size()];
            const std::size_t seq =
                slot.sequence.load(std::memory_order_acquire);
            const std::ptrdiff_t diff =
                static_cast<std::ptrdiff_t>(seq) -
                static_cast<std::ptrdiff_t>(ticket);
            if (diff == 0) {
                // Slot free for this lap: claim the ticket.  The CAS
                // carries no ordering duty (publication is the slot's
                // sequence store below), so relaxed suffices.
                if (tail_.compare_exchange_weak(
                        ticket, ticket + 1, std::memory_order_relaxed))
                {
                    slot.value = std::move(value);
                    slot.sequence.store(ticket + 1,
                                        std::memory_order_release);
                    return true;
                }
                // Lost the race; `ticket` was reloaded by the CAS.
            } else if (diff < 0) {
                return false;  // a full lap behind: the ring is full
            } else {
                // Another producer already claimed this ticket; chase
                // the current tail.
                ticket = tail_.load(std::memory_order_relaxed);
            }
        }
    }

    /**
     * Consumer side (exactly one thread): move the oldest value into
     * @p out and return true, or return false when nothing is
     * consumable (empty, or the head producer mid-publication).
     */
    bool
    tryPop(T &out)
    {
        const std::size_t head = head_.load(std::memory_order_relaxed);
        Slot &slot = slots_[head % slots_.size()];
        const std::size_t seq =
            slot.sequence.load(std::memory_order_acquire);
        if (static_cast<std::ptrdiff_t>(seq) -
                static_cast<std::ptrdiff_t>(head + 1) <
            0)
            return false;
        out = std::move(slot.value);
        slot.value = T();  // drop resources before the slot idles
        slot.sequence.store(head + slots_.size(),
                            std::memory_order_release);
        head_.store(head + 1, std::memory_order_relaxed);
        return true;
    }

    /**
     * Lock-free occupancy estimate safe from any thread (the metrics
     * sampler's queue-depth probe).  Relaxed loads of two cursors that
     * may be observed at different moments, so the raw difference is
     * clamped to [0, capacity] and only approximate for non-owning
     * threads -- the SpscRing::approxSize contract.
     */
    std::size_t
    approxSize() const
    {
        const std::size_t head = head_.load(std::memory_order_relaxed);
        const std::size_t tail = tail_.load(std::memory_order_relaxed);
        const std::size_t raw = tail >= head ? tail - head : 0;
        return raw > capacity() ? capacity() : raw;
    }

    bool empty() const { return approxSize() == 0; }

  private:
    /** One slot: ticket-stamped value storage.  Cache-line aligned so
     *  producers publishing neighbouring tickets do not false-share. */
    struct alignas(64) Slot
    {
        std::atomic<std::size_t> sequence{0};
        T value{};
    };

    std::vector<Slot> slots_;
    /** Producer cursor: next ticket to claim (CAS-advanced). */
    alignas(64) std::atomic<std::size_t> tail_{0};
    /** Consumer cursor: next ticket to pop (single writer). */
    alignas(64) std::atomic<std::size_t> head_{0};
};

} // namespace prime

#endif // PRIME_COMMON_MPSC_RING_HH
