/**
 * @file
 * A small fixed-size thread pool for fanning out independent simulator
 * work (whole inferences in sim::Evaluator, the per-tile MVMs of
 * PrimeSystem::run).  Deliberately minimal: no work stealing, no task
 * futures -- just parallelFor over an index range with an atomic
 * cursor, which is all the compute plane needs.
 *
 * Determinism contract: parallelFor(n, body) invokes body(i) exactly
 * once for every i in [0, n); bodies must write only to disjoint,
 * index-addressed state (out[i] = f(i)).  Under that discipline the
 * results are identical for every pool size, and a pool of size <= 1
 * degenerates to a plain sequential loop on the calling thread (the
 * deterministic fallback used when bit-exact RNG ordering matters).
 *
 * Pool-size resolution (first match wins):
 *   1. an explicit setGlobalThreadCount(n) call (config plumbing:
 *      `--set sim.threads=N`),
 *   2. the PRIME_THREADS environment variable,
 *   3. std::thread::hardware_concurrency().
 */

#ifndef PRIME_COMMON_THREAD_POOL_HH
#define PRIME_COMMON_THREAD_POOL_HH

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.hh"
#include "common/thread_annotations.hh"

namespace prime {

/** Fixed set of worker threads executing parallelFor jobs. */
class ThreadPool
{
  public:
    /**
     * @param threads total concurrency including the calling thread;
     *        <= 1 creates no workers (sequential fallback), 0 resolves
     *        via defaultThreadCount().
     */
    explicit ThreadPool(int threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total concurrency (workers + the participating caller). */
    int size() const { return static_cast<int>(workers_.size()) + 1; }

    /**
     * Run body(0) .. body(n-1), caller participating.  Returns after
     * every invocation completed.  Calls from multiple threads are
     * serialized; calls from inside a worker run inline (no deadlock).
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &body);

    /** The process-wide pool (lazily built at resolved size). */
    static ThreadPool &global();

    /**
     * Resize the global pool (rebuilds it on next use).  Not safe while
     * another thread is inside global().parallelFor.  n = 0 restores
     * env/hardware resolution.
     */
    static void setGlobalThreadCount(int n);

    /** PRIME_THREADS env var if set and positive, else hardware. */
    static int defaultThreadCount();

  private:
    void workerLoop(int index);

    /**
     * Claim-and-run loop over @p body / @p size, shared by workers and
     * the participating caller.  The arguments are snapshots of
     * body_/jobSize_ taken under mutex_ by the caller, so the loop
     * itself touches only the atomic cursor.
     */
    void runJob(const std::function<void(std::size_t)> &body,
                std::size_t size);

    std::vector<std::thread> workers_;

    Mutex serialMutex_;  ///< capability: one parallelFor at a time

    /** Capability guarding the job-handoff state below. */
    Mutex mutex_;
    CondVar wake_;
    CondVar done_;
    bool stop_ PRIME_GUARDED_BY(mutex_) = false;
    std::uint64_t generation_ PRIME_GUARDED_BY(mutex_) = 0;
    /** Workers not yet woken for this generation. */
    int pending_ PRIME_GUARDED_BY(mutex_) = 0;
    /** Workers currently inside runJob. */
    int running_ PRIME_GUARDED_BY(mutex_) = 0;

    /** Pointee owned by the parallelFor caller frame; workers snapshot
     *  the pointer under mutex_ and run it after unlocking (the
     *  generation/pending protocol keeps it alive until done_). */
    const std::function<void(std::size_t)> *body_
        PRIME_GUARDED_BY(mutex_) = nullptr;
    std::size_t jobSize_ PRIME_GUARDED_BY(mutex_) = 0;
    std::atomic<std::size_t> next_{0};
};

/**
 * A group of dedicated long-lived worker threads, for free-running
 * executors that pin one thread to one role (e.g. one pipeline stage)
 * instead of fanning an index range out over the shared pool.  Each
 * worker runs body(i) once, start to finish; join() (or destruction)
 * waits for all of them.
 *
 * Workers are pool-context threads: each gets a named trace lane
 * ("<prefix>-<i>") for per-stage telemetry, and nested
 * ThreadPool::parallelFor calls from inside a worker run inline rather
 * than serializing the group on the shared pool's job slot.
 */
class WorkerGroup
{
  public:
    /** Lifecycle of one worker, observable from any thread. */
    enum class WorkerState : int
    {
        Pending = 0,  ///< spawned, body not yet entered
        Running = 1,  ///< inside body(i)
        Done = 2,     ///< body returned
    };

    /** Spawn @p count workers running body(0) .. body(count-1). */
    WorkerGroup(const std::string &name_prefix, std::size_t count,
                std::function<void(std::size_t)> body);
    ~WorkerGroup();

    WorkerGroup(const WorkerGroup &) = delete;
    WorkerGroup &operator=(const WorkerGroup &) = delete;

    /** Wait for every worker to return (idempotent). */
    void join();

    std::size_t size() const { return threads_.size(); }

    /** Worker @p i's current state (relaxed; a metrics-probe view). */
    WorkerState
    workerState(std::size_t i) const
    {
        return static_cast<WorkerState>(
            (*states_)[i].load(std::memory_order_relaxed));
    }

    /** Workers currently inside their body (relaxed snapshot). */
    std::size_t runningWorkers() const;

  private:
    std::vector<std::thread> threads_;
    /** Shared with the worker lambdas so state outlives join(). */
    std::shared_ptr<std::vector<std::atomic<int>>> states_;
};

} // namespace prime

#endif // PRIME_COMMON_THREAD_POOL_HH
