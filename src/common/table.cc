#include "common/table.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace prime {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
    PRIME_ASSERT(!headers_.empty(), "table needs at least one column");
}

Table &
Table::row()
{
    rows_.emplace_back();
    return *this;
}

Table &
Table::cell(const std::string &value)
{
    PRIME_ASSERT(!rows_.empty(), "call row() before cell()");
    PRIME_ASSERT(rows_.back().size() < headers_.size(),
                 "row has more cells than headers");
    rows_.back().push_back(value);
    return *this;
}

Table &
Table::cell(double value, int precision)
{
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(precision);
    os << value;
    return cell(os.str());
}

Table &
Table::cell(long long value)
{
    return cell(std::to_string(value));
}

Table &
Table::speedupCell(double value)
{
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(value >= 100.0 ? 0 : (value >= 10.0 ? 1 : 2));
    os << value << "x";
    return cell(os.str());
}

Table &
Table::percentCell(double fraction, int precision)
{
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(precision);
    os << fraction * 100.0 << "%";
    return cell(os.str());
}

void
Table::print(std::ostream &os, const std::string &title) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &cells) {
        os << "| ";
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            std::string v = c < cells.size() ? cells[c] : "";
            os << v << std::string(widths[c] - v.size(), ' ');
            os << (c + 1 < headers_.size() ? " | " : " |");
        }
        os << '\n';
    };

    if (!title.empty())
        os << title << '\n';
    print_row(headers_);
    os << "|-";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        os << std::string(widths[c], '-');
        os << (c + 1 < headers_.size() ? "-|-" : "-|");
    }
    os << '\n';
    for (const auto &row : rows_)
        print_row(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            std::string v = c < cells.size() ? cells[c] : "";
            const bool quote =
                v.find(',') != std::string::npos ||
                v.find('"') != std::string::npos;
            if (quote) {
                std::string escaped = "\"";
                for (char ch : v) {
                    if (ch == '"')
                        escaped += '"';
                    escaped += ch;
                }
                escaped += '"';
                v = escaped;
            }
            os << v << (c + 1 < headers_.size() ? "," : "");
        }
        os << '\n';
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
}

std::string
formatCompact(double value, int precision)
{
    char buf[64];
    double mag = std::fabs(value);
    if (value != 0.0 && (mag >= 1.0e6 || mag < 1.0e-3))
        std::snprintf(buf, sizeof(buf), "%.*e", precision, value);
    else
        std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

} // namespace prime
