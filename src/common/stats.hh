/**
 * @file
 * Lightweight statistics registry in the spirit of gem5's stats package.
 *
 * Model components register named scalars/counters in a StatGroup; benches
 * and tests read them back or dump them as text.  No global state: each
 * simulated system owns its own root group.
 */

#ifndef PRIME_COMMON_STATS_HH
#define PRIME_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace prime {

/** A named accumulating statistic (count + sum, enough for mean). */
class Stat
{
  public:
    Stat() = default;

    /** Add one sample. */
    void
    sample(double value)
    {
        sum_ += value;
        count_ += 1;
        min_ = count_ == 1 ? value : (value < min_ ? value : min_);
        max_ = count_ == 1 ? value : (value > max_ ? value : max_);
    }

    /** Add to the running total without counting a sample (counter use). */
    void
    add(double value)
    {
        sum_ += value;
    }

    /** Increment a pure event counter. */
    void
    increment(std::uint64_t n = 1)
    {
        count_ += n;
    }

    /** Reset to empty. */
    void
    reset()
    {
        *this = Stat();
    }

    double sum() const { return sum_; }
    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return min_; }
    double max() const { return max_; }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * A flat namespace of stats addressed by dotted names
 * ("bank0.ff.mvm_passes").  Lookup creates on demand so components can
 * stay decoupled from whoever reads the numbers.
 */
class StatGroup
{
  public:
    /** Get or create a stat by name. */
    Stat &get(const std::string &name);

    /** Look up an existing stat; nullptr if absent. */
    const Stat *find(const std::string &name) const;

    /** All names in sorted order. */
    std::vector<std::string> names() const;

    /** Reset every stat. */
    void resetAll();

    /** Human-readable dump (name, count, sum, mean per line). */
    void dump(std::ostream &os) const;

  private:
    std::map<std::string, Stat> stats_;
};

} // namespace prime

#endif // PRIME_COMMON_STATS_HH
