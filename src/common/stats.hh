/**
 * @file
 * Lightweight statistics registry in the spirit of gem5's stats package.
 *
 * Model components register named scalars/counters, log-bucketed
 * histograms and derived formulas in a StatGroup; benches and tests
 * read them back, dump them as text, or serialize them to a versioned
 * JSON document (see dumpJson).  Groups nest: child("bank0") creates a
 * sub-group rendered as a nested JSON object and a dotted prefix in the
 * text dump.  No global state: each simulated system owns its own root
 * group.
 */

#ifndef PRIME_COMMON_STATS_HH
#define PRIME_COMMON_STATS_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/telemetry/histogram.hh"

namespace prime {

/**
 * A named accumulating statistic (count + sum, enough for mean).
 *
 * Concurrency: a Stat has at most one writer at a time (gem5-style --
 * concurrent updaters use per-worker shards merged post-join), but the
 * metrics sampler thread may *read* any stat mid-run.  Every field
 * access therefore goes through a relaxed std::atomic_ref: the writer's
 * read-modify-write stays a plain load+store pair (exact, since it is
 * the only writer) compiled to the same movs as before, while the
 * sampler's loads are race-free torn-value-free snapshots.  Relaxed
 * ordering is sufficient -- a sampled value needs no happens-before
 * with other stats, only freedom from data races.
 */
class Stat
{
  public:
    Stat() = default;

    /** Add one sample. */
    void
    sample(double value)
    {
        rstore(sum_, rload(sum_) + value);
        rstore(count_, rload(count_) + 1);
        const std::uint64_t samples = rload(samples_) + 1;
        rstore(samples_, samples);
        if (samples == 1) {
            rstore(min_, value);
            rstore(max_, value);
        } else {
            if (value < rload(min_))
                rstore(min_, value);
            if (value > rload(max_))
                rstore(max_, value);
        }
    }

    /** Add to the running total without counting a sample (counter use). */
    void
    add(double value)
    {
        rstore(sum_, rload(sum_) + value);
    }

    /** Increment a pure event counter. */
    void
    increment(std::uint64_t n = 1)
    {
        rstore(count_, rload(count_) + n);
    }

    /** Reset to empty. */
    void
    reset()
    {
        rstore(sum_, 0.0);
        rstore(count_, std::uint64_t{0});
        rstore(samples_, std::uint64_t{0});
        rstore(min_, 0.0);
        rstore(max_, 0.0);
    }

    double sum() const { return rload(sum_); }
    std::uint64_t count() const { return rload(count_); }
    double
    mean() const
    {
        const std::uint64_t count = rload(count_);
        return count ? rload(sum_) / count : 0.0;
    }

    /**
     * Whether min()/max() are meaningful: only sample() records
     * extrema, so an add-/increment-only stat has none (the dump
     * renders '-', the JSON serializer null).
     */
    bool hasSamples() const { return rload(samples_) > 0; }
    double min() const { return rload(min_); }
    double max() const { return rload(max_); }

  private:
    // atomic_ref disallows const referents, but these helpers only ever
    // load through the const path, so the const_cast is benign.
    template <typename T>
    static T
    rload(const T &field)
    {
        return std::atomic_ref<T>(const_cast<T &>(field))
            .load(std::memory_order_relaxed);
    }

    template <typename T>
    static void
    rstore(T &field, T value)
    {
        std::atomic_ref<T>(field).store(value,
                                        std::memory_order_relaxed);
    }

    double sum_ = 0.0;
    std::uint64_t count_ = 0;
    std::uint64_t samples_ = 0;  ///< sample() calls (extrema validity)
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * A namespace of stats addressed by dotted names
 * ("bank0.ff.mvm_passes").  Lookup creates on demand so components can
 * stay decoupled from whoever reads the numbers.  Besides plain Stats a
 * group holds histograms (latency distributions with quantiles),
 * formulas (values derived at read time, e.g. a hit rate), and child
 * groups.  Non-copyable: children are owned and formulas may capture
 * pointers to sibling stats (std::map nodes are address-stable).
 */
class StatGroup
{
  public:
    /** Version stamp of the JSON serialization format. */
    static constexpr int kJsonVersion = 1;

    StatGroup() = default;
    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Get or create a stat by name. */
    Stat &get(const std::string &name);

    /** Look up an existing stat; nullptr if absent. */
    const Stat *find(const std::string &name) const;

    /** Get or create a histogram by name. */
    telemetry::Histogram &histogram(const std::string &name);

    /** Look up an existing histogram; nullptr if absent. */
    const telemetry::Histogram *findHistogram(const std::string &name) const;

    /**
     * Register (or replace) a derived stat evaluated at read time.
     * The callable must stay valid for the group's lifetime; capture
     * pointers to stats of this group rather than enclosing objects.
     */
    void formula(const std::string &name, std::function<double()> fn);

    /** Evaluate a formula into @p out; false if absent. */
    bool evalFormula(const std::string &name, double &out) const;

    /** Get or create a child group. */
    StatGroup &child(const std::string &name);

    /** Look up an existing child group; nullptr if absent. */
    const StatGroup *findChild(const std::string &name) const;

    /** All scalar-stat names in sorted order. */
    std::vector<std::string> names() const;

    /** Reset every stat and histogram, recursing into children. */
    void resetAll();

    /**
     * Human-readable dump: one stat per line grouped by dotted prefix,
     * integral values printed without a fraction, '-' for the extrema
     * of sample-less stats; histograms with count/mean/p50/p95/p99;
     * formulas evaluated; children with a dotted prefix.
     */
    void dump(std::ostream &os) const;

    /**
     * Versioned JSON document: {"version":1,"stats":{...}}.  Scalars
     * serialize count/sum/mean and min/max (null without samples);
     * histograms add p50/p95/p99; formulas their value; child groups
     * nest as objects.
     */
    void dumpJson(std::ostream &os) const;

    /** The group's JSON object alone (no version envelope). */
    void dumpJsonObject(std::ostream &os) const;

  private:
    void dumpPrefixed(std::ostream &os, const std::string &prefix) const;

    std::map<std::string, Stat> stats_;
    std::map<std::string, telemetry::Histogram> histograms_;
    std::map<std::string, std::function<double()>> formulas_;
    std::map<std::string, std::unique_ptr<StatGroup>> children_;
};

/**
 * Serialize several independent groups into one versioned document:
 * {"version":1,"stats":{"<name>":{...},...}}.  Used where a system is
 * built from parts owning their own groups (PrimeSystem + MainMemory).
 */
void writeStatsDocument(
    std::ostream &os,
    const std::vector<std::pair<std::string, const StatGroup *>> &groups);

} // namespace prime

#endif // PRIME_COMMON_STATS_HH
