#include "common/logging.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace prime {

bool
parseLogLevel(const char *text, LogLevel &out)
{
    if (!text)
        return false;
    std::string lowered;
    for (const char *p = text; *p; ++p)
        lowered += static_cast<char>(
            std::tolower(static_cast<unsigned char>(*p)));
    if (lowered == "quiet") {
        out = LogLevel::Quiet;
    } else if (lowered == "normal") {
        out = LogLevel::Normal;
    } else if (lowered == "verbose") {
        out = LogLevel::Verbose;
    } else {
        return false;
    }
    return true;
}

namespace {

LogLevel
levelFromEnv()
{
    LogLevel level = LogLevel::Normal;
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env lookup; the
    // simulator never calls setenv/putenv after startup.
    if (const char *env = std::getenv("PRIME_LOG")) {
        if (!parseLogLevel(env, level) && *env)
            std::fprintf(stderr,
                         "warn: PRIME_LOG='%s' is not "
                         "quiet|normal|verbose; using normal\n",
                         env);
    }
    return level;
}

LogLevel &
globalLevelRef()
{
    static LogLevel level = levelFromEnv();
    return level;
}

} // namespace

LogLevel
logLevel()
{
    return globalLevelRef();
}

LogLevel
setLogLevel(LogLevel level)
{
    LogLevel prev = globalLevelRef();
    globalLevelRef() = level;
    return prev;
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    // Throwing (rather than exit(1)) lets gtest death/exception tests cover
    // user-error paths without killing the test binary.
    throw std::runtime_error("fatal: " + msg);
}

void
warnImpl(const std::string &msg)
{
    if (logLevel() != LogLevel::Quiet)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (logLevel() == LogLevel::Verbose)
        std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace prime
