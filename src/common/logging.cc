#include "common/logging.hh"

#include <cstdio>
#include <stdexcept>

namespace prime {

namespace {
LogLevel globalLevel = LogLevel::Normal;
} // namespace

LogLevel
logLevel()
{
    return globalLevel;
}

LogLevel
setLogLevel(LogLevel level)
{
    LogLevel prev = globalLevel;
    globalLevel = level;
    return prev;
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    // Throwing (rather than exit(1)) lets gtest death/exception tests cover
    // user-error paths without killing the test binary.
    throw std::runtime_error("fatal: " + msg);
}

void
warnImpl(const std::string &msg)
{
    if (globalLevel != LogLevel::Quiet)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (globalLevel == LogLevel::Verbose)
        std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace prime
