/**
 * @file
 * Physical-unit conventions used across the PRIME model.
 *
 * The simulator is an architectural model, not SPICE: quantities are plain
 * doubles in fixed canonical units.  Keeping a single convention in one
 * header avoids the classic ns-vs-ps / pJ-vs-nJ mixups when component
 * models are combined.
 *
 * Canonical units:
 *   time    -> nanoseconds   (ns)
 *   energy  -> picojoules    (pJ)
 *   power   -> milliwatts    (mW)   [1 pJ / 1 ns == 1 mW]
 *   area    -> square micrometers (um^2)
 *   voltage -> volts
 *   current -> microamperes  (uA)
 *   resistance -> ohms
 *   conductance -> microsiemens (uS) [V * uS == uA]
 */

#ifndef PRIME_COMMON_UNITS_HH
#define PRIME_COMMON_UNITS_HH

namespace prime {

/** Time in nanoseconds. */
using Ns = double;
/** Energy in picojoules. */
using PicoJoule = double;
/** Power in milliwatts (pJ/ns). */
using MilliWatt = double;
/** Area in square micrometers. */
using SquareUm = double;
/** Voltage in volts. */
using Volt = double;
/** Current in microamperes. */
using MicroAmp = double;
/** Resistance in ohms. */
using Ohm = double;
/** Conductance in microsiemens. */
using MicroSiemens = double;
/** Frequency in GHz (cycles per ns). */
using GigaHertz = double;

namespace units {

/** Convert a resistance in ohms to a conductance in microsiemens. */
constexpr MicroSiemens
ohmsToMicroSiemens(Ohm r)
{
    return 1.0e6 / r;
}

/** Convert megabytes to bytes. */
constexpr unsigned long long
mib(unsigned long long n)
{
    return n * 1024ull * 1024ull;
}

/** Convert gigabytes to bytes. */
constexpr unsigned long long
gib(unsigned long long n)
{
    return n * 1024ull * 1024ull * 1024ull;
}

/** Convert kilobytes to bytes. */
constexpr unsigned long long
kib(unsigned long long n)
{
    return n * 1024ull;
}

/** Seconds expressed in ns. */
constexpr Ns second = 1.0e9;
/** Microseconds expressed in ns. */
constexpr Ns microsecond = 1.0e3;
/** Milliseconds expressed in ns. */
constexpr Ns millisecond = 1.0e6;

/** Nanojoules expressed in pJ. */
constexpr PicoJoule nanojoule = 1.0e3;
/** Microjoules expressed in pJ. */
constexpr PicoJoule microjoule = 1.0e6;
/** Millijoules expressed in pJ. */
constexpr PicoJoule millijoule = 1.0e9;
/** Joules expressed in pJ. */
constexpr PicoJoule joule = 1.0e12;

/** Square millimeters expressed in um^2. */
constexpr SquareUm mm2 = 1.0e6;

} // namespace units
} // namespace prime

#endif // PRIME_COMMON_UNITS_HH
