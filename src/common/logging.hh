/**
 * @file
 * Minimal gem5-style status/error reporting.
 *
 * Conventions (mirroring gem5's logging.hh):
 *   panic()  -- a model invariant was violated; this is a simulator bug.
 *               Aborts so a debugger/core dump can inspect the state.
 *   fatal()  -- the user asked for something the model cannot do (bad
 *               configuration, out-of-range parameter).  Exits cleanly.
 *   warn()   -- something is modeled approximately; simulation continues.
 *   inform() -- neutral status output.
 */

#ifndef PRIME_COMMON_LOGGING_HH
#define PRIME_COMMON_LOGGING_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace prime {

/** Verbosity gate for inform(); warnings and errors always print. */
enum class LogLevel { Quiet, Normal, Verbose };

/**
 * Parse a PRIME_LOG-style level string ("quiet" | "normal" | "verbose",
 * case-insensitive).  Returns false and leaves @p out untouched on
 * anything else.
 */
bool parseLogLevel(const char *text, LogLevel &out);

/**
 * Process-wide log level.  Initialized once from the PRIME_LOG
 * environment variable (quiet|normal|verbose, default Normal) -- the
 * single place the environment is consulted, shared by prime_cli, the
 * benches and the test binaries.  setLogLevel overrides it.
 */
LogLevel logLevel();

/** Change the process-wide log level; returns the previous value. */
LogLevel setLogLevel(LogLevel level);

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Build a message from stream-style arguments. */
template <typename... Args>
std::string
format(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail
} // namespace prime

/** Unrecoverable internal error: model invariant broken. */
#define PRIME_PANIC(...) \
    ::prime::detail::panicImpl(__FILE__, __LINE__, \
                               ::prime::detail::format(__VA_ARGS__))

/** Unrecoverable user error: invalid configuration or arguments. */
#define PRIME_FATAL(...) \
    ::prime::detail::fatalImpl(__FILE__, __LINE__, \
                               ::prime::detail::format(__VA_ARGS__))

/** Non-fatal modeling caveat. */
#define PRIME_WARN(...) \
    ::prime::detail::warnImpl(::prime::detail::format(__VA_ARGS__))

/** Neutral status message (suppressed at LogLevel::Quiet). */
#define PRIME_INFORM(...) \
    ::prime::detail::informImpl(::prime::detail::format(__VA_ARGS__))

/** Fatal user error when a condition holds. */
#define PRIME_FATAL_IF(cond, ...) \
    do { \
        if (cond) { \
            PRIME_FATAL(__VA_ARGS__); \
        } \
    } while (0)

/** Panic unless a model invariant holds. */
#define PRIME_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            PRIME_PANIC("assertion failed: " #cond " ", \
                        ::prime::detail::format(__VA_ARGS__)); \
        } \
    } while (0)

#endif // PRIME_COMMON_LOGGING_HH
