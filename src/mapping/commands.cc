#include "mapping/commands.hh"

#include <sstream>

#include "common/logging.hh"

namespace prime::mapping {

namespace {

constexpr std::size_t kEncodedSize = 24;

void
put32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
put64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t
get32(const std::vector<std::uint8_t> &in, std::size_t at)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(in[at + i]) << (8 * i);
    return v;
}

std::uint64_t
get64(const std::vector<std::uint8_t> &in, std::size_t at)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(in[at + i]) << (8 * i);
    return v;
}

} // namespace

std::vector<std::uint8_t>
encodeCommand(const Command &command)
{
    std::vector<std::uint8_t> out;
    out.reserve(kEncodedSize);
    out.push_back(static_cast<std::uint8_t>(command.op));
    out.push_back(command.flag);
    // Pack matAddr and bytes into shared fields: config commands use
    // matAddr, data-flow commands use bytes.
    put32(out, command.isDatapathConfig() ? command.matAddr
                                          : command.bytes);
    put64(out, command.src);
    put64(out, command.dst);
    out.push_back(0);  // reserved
    out.push_back(0);  // reserved
    PRIME_ASSERT(out.size() == kEncodedSize, "encode size drift");
    return out;
}

Command
decodeCommand(const std::vector<std::uint8_t> &bytes)
{
    PRIME_FATAL_IF(bytes.size() != kEncodedSize,
                   "command must be ", kEncodedSize, " bytes, got ",
                   bytes.size());
    PRIME_FATAL_IF(bytes[0] > static_cast<std::uint8_t>(CommandOp::Store),
                   "bad opcode ", static_cast<int>(bytes[0]));
    Command c;
    c.op = static_cast<CommandOp>(bytes[0]);
    c.flag = bytes[1];
    if (c.isDatapathConfig())
        c.matAddr = get32(bytes, 2);
    else
        c.bytes = get32(bytes, 2);
    c.src = get64(bytes, 6);
    c.dst = get64(bytes, 14);
    if (c.op == CommandOp::SetMatFunction)
        PRIME_FATAL_IF(c.flag > 2, "mat function flag ", int(c.flag));
    else if (c.isDatapathConfig())
        PRIME_FATAL_IF(c.flag > 1, "config flag ", int(c.flag));
    return c;
}

std::string
toString(const Command &command)
{
    std::ostringstream os;
    switch (command.op) {
      case CommandOp::SetMatFunction: {
        const char *fn[] = {"prog", "comp", "mem"};
        os << fn[command.flag] << " mat " << command.matAddr;
        break;
      }
      case CommandOp::BypassSigmoid:
        os << "bypass sigmoid mat " << command.matAddr << " "
           << int(command.flag);
        break;
      case CommandOp::BypassSa:
        os << "bypass SA mat " << command.matAddr << " "
           << int(command.flag);
        break;
      case CommandOp::InputSource:
        os << "input source mat " << command.matAddr << " "
           << (command.flag ? "prev-layer" : "buffer");
        break;
      case CommandOp::Fetch:
        os << "fetch mem:0x" << std::hex << command.src << " to buf:0x"
           << command.dst << std::dec << " " << command.bytes;
        break;
      case CommandOp::Commit:
        os << "commit buf:0x" << std::hex << command.src << " to mem:0x"
           << command.dst << std::dec << " " << command.bytes;
        break;
      case CommandOp::Load:
        os << "load buf:0x" << std::hex << command.src << " to ff:0x"
           << command.dst << std::dec << " " << command.bytes;
        break;
      case CommandOp::Store:
        os << "store ff:0x" << std::hex << command.src << " to buf:0x"
           << command.dst << std::dec << " " << command.bytes;
        break;
    }
    return os.str();
}

const char *
commandOpName(CommandOp op)
{
    switch (op) {
      case CommandOp::SetMatFunction: return "cmd.set_mat_function";
      case CommandOp::BypassSigmoid: return "cmd.bypass_sigmoid";
      case CommandOp::BypassSa: return "cmd.bypass_sa";
      case CommandOp::InputSource: return "cmd.input_source";
      case CommandOp::Fetch: return "cmd.fetch";
      case CommandOp::Commit: return "cmd.commit";
      case CommandOp::Load: return "cmd.load";
      case CommandOp::Store: return "cmd.store";
    }
    return "cmd.unknown";
}

} // namespace prime::mapping
