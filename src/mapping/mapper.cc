#include "mapping/mapper.hh"

#include <algorithm>
#include <set>

#include "common/logging.hh"

namespace prime::mapping {

const char *
nnScaleName(NnScale scale)
{
    switch (scale) {
      case NnScale::Small: return "small";
      case NnScale::Medium: return "medium";
      case NnScale::Large: return "large";
    }
    return "?";
}

long long
LayerMapping::serialRounds() const
{
    const long long parallel =
        static_cast<long long>(inMatReplicas) * crossMatReplicas;
    return (info.positions + parallel - 1) / parallel;
}

long long
MappingPlan::totalMats() const
{
    long long n = 0;
    for (const LayerMapping &l : layers)
        n += l.matsUsed();
    return n;
}

long long
MappingPlan::totalSynapseCells() const
{
    long long n = 0;
    for (const LayerMapping &l : layers)
        for (const MatTile &t : l.tiles)
            n += static_cast<long long>(t.rowsUsed) * t.colsUsed *
                 l.inMatReplicas;
    return n;
}

std::vector<PipelineStage>
MappingPlan::pipelineStages(std::size_t topology_layer_count) const
{
    std::vector<PipelineStage> stages;
    if (layers.empty()) {
        PipelineStage all;
        all.banks = {0};
        all.endLayer = topology_layer_count;
        return {all};
    }

    // Replica-0 bank set of every weighted layer.  The placement cursor
    // is monotonic, so these sets are intervals and a stage break
    // happens exactly where consecutive layers stop sharing a bank.
    std::vector<std::set<int>> layer_banks(layers.size());
    for (std::size_t i = 0; i < layers.size(); ++i)
        for (const MatTile &t : layers[i].tiles)
            if (t.replica == 0)
                layer_banks[i].insert(t.bank);

    PipelineStage cur;
    std::set<int> banks = layer_banks[0];
    for (std::size_t i = 1; i <= layers.size(); ++i) {
        bool close = i == layers.size();
        if (!close) {
            bool overlap = false;
            for (int b : layer_banks[i])
                overlap = overlap || banks.count(b) > 0;
            close = !overlap;
        }
        if (!close) {
            banks.insert(layer_banks[i].begin(), layer_banks[i].end());
            continue;
        }
        cur.endWeighted = i;
        // A stage owns its weighted layers plus the activation/pool
        // layers that follow them, up to the next stage's first
        // weighted layer.
        cur.endLayer = i == layers.size()
                           ? topology_layer_count
                           : static_cast<std::size_t>(
                                 layers[i].info.layerIndex);
        cur.banks.assign(banks.begin(), banks.end());
        stages.push_back(cur);
        if (i < layers.size()) {
            cur = PipelineStage{};
            cur.firstWeighted = i;
            cur.firstLayer = stages.back().endLayer;
            banks = layer_banks[i];
        }
    }
    return stages;
}

Mapper::Mapper(const nvmodel::Geometry &geometry,
               const MapperOptions &options)
    : geometry_(geometry), options_(options)
{
}

std::vector<WeightedLayer>
Mapper::weightedLayers(const nn::Topology &topology)
{
    std::vector<WeightedLayer> out;
    for (std::size_t i = 0; i < topology.layers.size(); ++i) {
        const nn::LayerSpec &s = topology.layers[i];
        if (s.kind != nn::LayerKind::FullyConnected &&
            s.kind != nn::LayerKind::Convolution)
            continue;
        WeightedLayer w;
        w.layerIndex = static_cast<int>(i);
        w.kind = s.kind;
        if (s.kind == nn::LayerKind::FullyConnected) {
            w.rows = s.inFeatures;
            w.cols = s.outFeatures;
            w.positions = 1;
        } else {
            w.rows = s.inC * s.kernel * s.kernel;
            w.cols = s.outC;
            w.positions = static_cast<long long>(s.outH) * s.outW;
        }
        if (i + 1 < topology.layers.size()) {
            const nn::LayerKind next = topology.layers[i + 1].kind;
            w.sigmoidAfter = next == nn::LayerKind::Sigmoid;
            w.reluAfter = next == nn::LayerKind::Relu;
        }
        out.push_back(w);
    }
    return out;
}

MappingPlan
Mapper::map(const nn::Topology &topology) const
{
    const int mat_rows = geometry_.matRows;
    const int mat_cols = geometry_.matCols;
    const int mats_per_bank =
        geometry_.ffSubarraysPerBank * geometry_.matsPerSubarray;
    const long long total_mats =
        static_cast<long long>(mats_per_bank) * geometry_.totalBanks();

    MappingPlan plan;
    plan.benchmark = topology.name;

    // 1. Tile every weighted layer.
    for (const WeightedLayer &w : weightedLayers(topology)) {
        LayerMapping m;
        m.info = w;
        m.rowTiles = (w.rows + mat_rows - 1) / mat_rows;
        m.colTiles = (w.cols + mat_cols - 1) / mat_cols;
        if (m.rowTiles == 1 && m.colTiles == 1) {
            // Small layer: pack independent copies into the same mat
            // (the paper's 128-1 -> 256-2 duplication).
            m.inMatReplicas =
                std::max(1, std::min(mat_rows / w.rows,
                                     mat_cols / w.cols));
        }
        plan.layers.push_back(m);
    }

    long long base_mats = 0;
    for (const LayerMapping &m : plan.layers)
        base_mats += m.matsPerReplica();
    PRIME_FATAL_IF(base_mats > total_mats,
                   topology.name, " needs ", base_mats,
                   " FF mats but the memory provides ", total_mats);

    // 2. Classify scale and pick the reservation that one NN copy uses.
    if (base_mats <= 1 && plan.layers.size() == 1)
        plan.scale = NnScale::Small;
    else if (base_mats <= mats_per_bank)
        plan.scale = plan.layers.size() == 1 ? NnScale::Small
                                             : NnScale::Medium;
    else
        plan.scale = NnScale::Large;

    plan.banksUsed = static_cast<int>(
        (base_mats + mats_per_bank - 1) / mats_per_bank);

    // 3. Bank-level parallelism: small/medium NNs are copied into every
    // bank (one image per bank); large NNs replicate whole pipelines
    // into spare banks when they fit.
    if (options_.enableBankParallelism)
        plan.bankReplicas =
            std::max(1, geometry_.totalBanks() / plan.banksUsed);
    else
        plan.bankReplicas = 1;

    // Utilization is measured against the FF resources the plan reserves:
    // one bank for small/medium (each bank hosts an identical copy), the
    // whole memory for large.
    const long long reserved_mats =
        plan.scale == NnScale::Large
            ? total_mats
            : static_cast<long long>(mats_per_bank);

    plan.utilizationBefore =
        static_cast<double>(base_mats) / reserved_mats;

    // 4. Replication into spare mats.  Conv layers execute outH*outW
    // MVMs per inference, so extra copies multiply throughput; FC layers
    // gain nothing within a single inference and are not replicated
    // across mats.
    long long spare = (plan.scale == NnScale::Large
                           ? total_mats / plan.bankReplicas
                           : static_cast<long long>(mats_per_bank)) -
                      base_mats;
    if (options_.enableReplication && plan.scale != NnScale::Large) {
        // Whole-NN copies inside the bank keep several images in
        // flight; the Buffer subarray's connection-unit bandwidth bounds
        // useful copies at two (both copies stream activations through
        // the same buffer).
        constexpr int kMaxCopiesPerBank = 2;
        plan.copiesPerBank = static_cast<int>(std::max<long long>(
            1, std::min<long long>(kMaxCopiesPerBank,
                                   mats_per_bank / base_mats)));
        spare -= static_cast<long long>(plan.copiesPerBank - 1) * base_mats;
    }
    if (options_.enableReplication) {
        // The connection-unit bandwidth also bounds useful conv-layer
        // replicas; cap the fan-out per layer.
        constexpr int kMaxConvReplicas = 5;
        bool progress = true;
        while (progress && spare > 0) {
            progress = false;
            // Pick the conv layer with the most serial rounds left.
            LayerMapping *best = nullptr;
            for (LayerMapping &m : plan.layers) {
                if (m.info.kind != nn::LayerKind::Convolution)
                    continue;
                if (m.serialRounds() <= 1)
                    continue;
                if (m.crossMatReplicas >= kMaxConvReplicas)
                    continue;
                if (m.matsPerReplica() > spare)
                    continue;
                if (!best || m.serialRounds() > best->serialRounds())
                    best = &m;
            }
            if (best) {
                best->crossMatReplicas += 1;
                spare -= best->matsPerReplica();
                progress = true;
            }
        }
    }

    // 5. Physical placement: walk mats in (bank, subarray, mat) order.
    // Large plans additionally align each layer's tile block to a bank
    // boundary when the current bank's remainder cannot hold it: the
    // inter-bank pipeline then gets clean bank-disjoint stage
    // boundaries instead of adjacent layers straddling a shared bank.
    // If the alignment holes would overflow the memory, fall back to
    // dense placement (still a valid pipeline; consecutive layers just
    // merge into wider stages).
    auto place_all = [&](bool align) -> long long {
        long long cursor = 0;
        auto place = [&](MatTile &tile) {
            const long long in_bank = cursor % mats_per_bank;
            tile.bank = static_cast<int>(cursor / mats_per_bank);
            tile.subarray = static_cast<int>(in_bank /
                                             geometry_.matsPerSubarray);
            tile.mat =
                static_cast<int>(in_bank % geometry_.matsPerSubarray);
            ++cursor;
        };
        for (LayerMapping &m : plan.layers) {
            m.tiles.clear();
            if (align) {
                const long long block =
                    static_cast<long long>(m.crossMatReplicas) *
                    m.matsPerReplica();
                const long long rem =
                    mats_per_bank - cursor % mats_per_bank;
                if (rem < mats_per_bank && block > rem)
                    cursor += rem;
            }
            for (int rep = 0; rep < m.crossMatReplicas; ++rep) {
                for (int rt = 0; rt < m.rowTiles; ++rt) {
                    for (int ct = 0; ct < m.colTiles; ++ct) {
                        MatTile t;
                        t.layerIndex = m.info.layerIndex;
                        t.rowTile = rt;
                        t.colTile = ct;
                        t.replica = rep;
                        t.rowsUsed = std::min(
                            mat_rows, m.info.rows - rt * mat_rows);
                        t.colsUsed = std::min(
                            mat_cols, m.info.cols - ct * mat_cols);
                        place(t);
                        m.tiles.push_back(t);
                    }
                }
            }
        }
        return cursor;
    };
    long long end_cursor = place_all(plan.scale == NnScale::Large);
    if (end_cursor > total_mats)
        end_cursor = place_all(false);

    plan.utilizationAfter =
        static_cast<double>(plan.totalMats() +
                            static_cast<long long>(plan.copiesPerBank - 1) *
                                base_mats) /
        reserved_mats;
    // Replicas and alignment holes may push tiles into further banks;
    // report the real footprint and rescale bank-level parallelism to
    // the banks actually left over.
    plan.banksUsed = static_cast<int>(std::max<long long>(
        plan.banksUsed,
        (end_cursor + mats_per_bank - 1) / mats_per_bank));
    if (options_.enableBankParallelism)
        plan.bankReplicas =
            std::max(1, geometry_.totalBanks() / plan.banksUsed);
    return plan;
}

} // namespace prime::mapping
