/**
 * @file
 * The PRIME controller command set (paper Table I).
 *
 * Datapath-configure commands (issued once per FF configuration):
 *   prog/comp/mem [mat adr][0/1/2]   select mat function
 *   bypass sigmoid [mat adr][0/1]
 *   bypass SA [mat adr][0/1]
 *   input source [mat adr][0/1]      Buffer subarray vs previous layer
 *
 * Data-flow-control commands (issued throughout computation):
 *   fetch  [mem adr] to [buf adr]
 *   commit [buf adr] to [mem adr]
 *   load   [buf adr] to [FF adr]
 *   store  [FF adr]  to [buf adr]
 */

#ifndef PRIME_MAPPING_COMMANDS_HH
#define PRIME_MAPPING_COMMANDS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace prime::mapping {

/** Command opcodes, one per Table I row. */
enum class CommandOp : std::uint8_t
{
    SetMatFunction = 0,  ///< prog/comp/mem [mat adr][0/1/2]
    BypassSigmoid = 1,   ///< bypass sigmoid [mat adr][0/1]
    BypassSa = 2,        ///< bypass SA [mat adr][0/1]
    InputSource = 3,     ///< input source [mat adr][0/1]
    Fetch = 4,           ///< fetch [mem adr] to [buf adr]
    Commit = 5,          ///< commit [buf adr] to [mem adr]
    Load = 6,            ///< load [buf adr] to [FF adr]
    Store = 7,           ///< store [FF adr] to [buf adr]
};

/** Mat function selected by SetMatFunction. */
enum class MatFunction : std::uint8_t
{
    Program = 0,
    Compute = 1,
    Memory = 2,
};

/** Input source selected by InputSource. */
enum class InputSource : std::uint8_t
{
    Buffer = 0,
    PreviousLayer = 1,
};

/** One decoded controller command. */
struct Command
{
    CommandOp op = CommandOp::SetMatFunction;
    /** Global mat address for datapath-configure commands. */
    std::uint32_t matAddr = 0;
    /** 0/1/2 flag argument for datapath-configure commands. */
    std::uint8_t flag = 0;
    /** Source address (mem/buf/FF depending on op). */
    std::uint64_t src = 0;
    /** Destination address. */
    std::uint64_t dst = 0;
    /** Transfer size for data-flow commands. */
    std::uint32_t bytes = 0;

    bool isDatapathConfig() const
    {
        return op == CommandOp::SetMatFunction ||
               op == CommandOp::BypassSigmoid ||
               op == CommandOp::BypassSa || op == CommandOp::InputSource;
    }

    bool operator==(const Command &) const = default;
};

/** Fixed-size binary encoding (24 bytes) for the command queue. */
std::vector<std::uint8_t> encodeCommand(const Command &command);

/** Decode; throws via PRIME_FATAL on malformed input. */
Command decodeCommand(const std::vector<std::uint8_t> &bytes);

/** Assembly-style rendering ("comp mat 12", "load buf:0x40 to ff:0x0 64"). */
std::string toString(const Command &command);

/** Static span/mnemonic name of an opcode ("cmd.load", "cmd.fetch"). */
const char *commandOpName(CommandOp op);

} // namespace prime::mapping

#endif // PRIME_MAPPING_COMMANDS_HH
