/**
 * @file
 * Compile-time NN-to-crossbar mapping (paper Section IV-B).
 *
 * The mapper turns a Topology into a MappingPlan:
 *
 *   - Small-scale NN (fits one FF mat): mapped once, then *replicated*
 *     into independent portions of the mat (e.g. a 128-1 NN becomes a
 *     256-2 duplicate) and into spare mats.
 *   - Medium-scale NN (fits the FF subarrays of one bank): *split* into
 *     256x256 tiles across mats; partial results of row tiles are
 *     *merged* by digital adders afterwards (split-merge).
 *   - Large-scale NN (exceeds one bank): tiles spill across banks, which
 *     then run as a pipeline over the shared internal bus (inter-bank
 *     communication); spare mats still host conv-layer replicas.
 *
 * Convolution layers are lowered to MVMs of shape (inC*k*k) x outC that
 * execute once per output position, so replication multiplies their
 * throughput; bank-level parallelism (Section IV-B2) replicates whole
 * small/medium NNs across all 64 banks, one image per bank.
 */

#ifndef PRIME_MAPPING_MAPPER_HH
#define PRIME_MAPPING_MAPPER_HH

#include <cstddef>
#include <string>
#include <vector>

#include "nn/topology.hh"
#include "nvmodel/tech_params.hh"

namespace prime::mapping {

/** Size class of an NN relative to the FF resources (Section IV-B1). */
enum class NnScale
{
    Small,   ///< fits in a single FF mat
    Medium,  ///< fits in the FF subarrays of one bank
    Large,   ///< spans multiple banks
};

const char *nnScaleName(NnScale scale);

/** Mapper configuration. */
struct MapperOptions
{
    /** Replicate small NNs / conv layers into spare mats (IV-B1). */
    bool enableReplication = true;
    /** Use all banks for one-image-per-bank parallelism (IV-B2). */
    bool enableBankParallelism = true;
};

/** The MVM view of one weighted layer. */
struct WeightedLayer
{
    /** Index into Topology::layers. */
    int layerIndex = 0;
    nn::LayerKind kind = nn::LayerKind::FullyConnected;
    /** MVM input count (FC: inFeatures; conv: inC*k*k). */
    int rows = 0;
    /** MVM output count (FC: outFeatures; conv: outC). */
    int cols = 0;
    /** MVM executions per inference (FC: 1; conv: outH*outW). */
    long long positions = 1;
    /** Whether a sigmoid directly follows (datapath bypass config). */
    bool sigmoidAfter = false;
    /** Whether a ReLU directly follows. */
    bool reluAfter = false;
};

/** One physical mat assignment. */
struct MatTile
{
    int layerIndex = 0;
    /** Tile coordinates within the layer's weight matrix. */
    int rowTile = 0, colTile = 0;
    /** Occupied logical cells in this mat. */
    int rowsUsed = 0, colsUsed = 0;
    /** Cross-mat replica this tile belongs to (0 = primary). */
    int replica = 0;
    /** Physical placement. */
    int bank = 0, subarray = 0, mat = 0;
};

/** Mapping of one weighted layer. */
struct LayerMapping
{
    WeightedLayer info;
    int rowTiles = 1, colTiles = 1;
    /** Copies packed inside each mat (small layers). */
    int inMatReplicas = 1;
    /** Whole-tile-set copies placed in spare mats. */
    int crossMatReplicas = 1;
    std::vector<MatTile> tiles;

    /** Mats occupied by one replica. */
    int matsPerReplica() const { return rowTiles * colTiles; }
    /** All mats occupied. */
    long long matsUsed() const
    {
        return static_cast<long long>(tiles.size());
    }
    /** Serial MVM rounds to cover all positions of one inference. */
    long long serialRounds() const;
};

/**
 * One stage of the inter-bank pipeline a Large plan executes as
 * (Section IV-B): a maximal run of consecutive weighted layers whose
 * replica-0 tiles share banks.  Stages are bank-disjoint by
 * construction (the placement cursor is monotonic), so they can run
 * concurrently on different samples.  Small/medium plans collapse to a
 * single stage covering the whole NN.
 */
struct PipelineStage
{
    /** Banks hosting this stage's replica-0 tiles (sorted, unique). */
    std::vector<int> banks;
    /** Topology layer range [firstLayer, endLayer) this stage executes
     *  (weighted layers plus the activation/pool layers that follow
     *  them). */
    std::size_t firstLayer = 0, endLayer = 0;
    /** Range [firstWeighted, endWeighted) into MappingPlan::layers. */
    std::size_t firstWeighted = 0, endWeighted = 0;
};

/** The full compile-time plan. */
struct MappingPlan
{
    std::string benchmark;
    NnScale scale = NnScale::Small;
    std::vector<LayerMapping> layers;
    /** Banks one copy of the NN occupies (pipeline depth for Large). */
    int banksUsed = 1;
    /** Independent copies across banks (bank-level parallelism). */
    int bankReplicas = 1;
    /**
     * Whole-NN copies replicated inside each bank's FF subarrays so
     * several images are in flight per bank (capped by the Buffer
     * subarray bandwidth; Section IV-B1 replication for small NNs).
     */
    int copiesPerBank = 1;
    /** Mat-count utilization of the reserved FF resources. */
    double utilizationBefore = 0.0;
    double utilizationAfter = 0.0;

    long long totalMats() const;
    long long totalSynapseCells() const;

    /**
     * Group the plan's layers into bank-disjoint pipeline stages.
     * @p topology_layer_count is the total layer count of the mapped
     * Topology (so trailing activation/pool layers land in the last
     * stage).  Always returns at least one stage; the stages partition
     * both the topology layers and the weighted layers in order.
     */
    std::vector<PipelineStage>
    pipelineStages(std::size_t topology_layer_count) const;
};

/** The compile-time mapper. */
class Mapper
{
  public:
    Mapper(const nvmodel::Geometry &geometry, const MapperOptions &options);

    /** Extract the MVM view of every weighted layer. */
    static std::vector<WeightedLayer>
    weightedLayers(const nn::Topology &topology);

    /** Produce the full plan; PRIME_FATAL if the NN exceeds capacity. */
    MappingPlan map(const nn::Topology &topology) const;

  private:
    nvmodel::Geometry geometry_;
    MapperOptions options_;
};

} // namespace prime::mapping

#endif // PRIME_MAPPING_MAPPER_HH
