#include "reram/cell.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace prime::reram {

MicroSiemens
Cell::idealConductance(const DeviceParams &params, int level, int bits)
{
    PRIME_ASSERT(bits >= 1 && bits <= 8, "MLC bits=", bits);
    const int levels = 1 << bits;
    PRIME_ASSERT(level >= 0 && level < levels,
                 "level=", level, " of ", levels);
    const MicroSiemens g_min = params.gMin();
    const MicroSiemens g_max = params.gMax();
    return g_min +
           (g_max - g_min) * static_cast<double>(level) / (levels - 1);
}

void
Cell::program(const DeviceParams &params, int level, int bits, Rng *rng)
{
    MicroSiemens ideal = idealConductance(params, level, bits);
    MicroSiemens actual = ideal;
    if (rng) {
        // Multiplicative programming error; the closed-loop write-verify
        // tuning of [31] leaves a residual relative error on this order.
        actual = ideal * std::exp(rng->gaussian(0.0, params.programVariation));
        actual = std::clamp(actual, params.gMin(), params.gMax());
    }
    // Count a write only when the state actually changes (write drivers
    // verify before pulsing).
    if (!everProgrammed_ || level != level_ || levelCount_ != (1 << bits))
        ++wear_;
    everProgrammed_ = true;
    level_ = level;
    levelCount_ = 1 << bits;
    conductance_ = actual;
}

void
Cell::set(const DeviceParams &params, Rng *rng)
{
    program(params, 1, 1, rng);
}

void
Cell::reset(const DeviceParams &params, Rng *rng)
{
    program(params, 0, 1, rng);
}

bool
Cell::readBit(const DeviceParams &params) const
{
    const MicroSiemens mid = 0.5 * (params.gMin() + params.gMax());
    return conductance_ >= mid;
}

} // namespace prime::reram
