/**
 * @file
 * ReRAM defect models for the reliability study.
 *
 * Fabricated crossbars suffer stuck-at faults: cells stuck at low
 * resistance (SA-LRS, reads as the maximum level) from over-forming, or
 * stuck at high resistance (SA-HRS, reads as level 0) from broken
 * filaments -- a few tenths of a percent in mature processes, worse in
 * research devices (the 12x12 prototype of Prezioso et al. [12] worked
 * around such defects).  The composing scheme stores each logical
 * weight in two cells of two arrays, so a single fault perturbs one
 * 4-bit half of one polarity; this module computes the *effective*
 * logical weight a faulty array realizes, so the NN-level impact can be
 * measured without simulating every cell.
 */

#ifndef PRIME_RERAM_FAULTS_HH
#define PRIME_RERAM_FAULTS_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "reram/composing.hh"

namespace prime::reram {

/** Kinds of stuck cells. */
enum class FaultKind
{
    StuckAtHrs,  ///< broken filament: conductance floor (level 0)
    StuckAtLrs,  ///< over-formed: conductance ceiling (max level)
};

/** Fault-injection configuration. */
struct FaultModel
{
    /** Probability an individual cell is stuck. */
    double cellFaultRate = 0.0;
    /** Fraction of stuck cells that are SA-LRS (rest SA-HRS). */
    double lrsFraction = 0.5;
};

/**
 * Apply stuck-at faults to a logical signed weight matrix under the
 * composing layout (per logical weight: high cell + low cell, in the
 * positive array when w > 0, negative when w < 0; the opposite-polarity
 * pair holds level 0 and can *also* get stuck, creating spurious
 * contributions).  Returns the effective logical weights.
 */
std::vector<std::vector<int>>
injectWeightFaults(const std::vector<std::vector<int>> &weights,
                   const ComposingParams &p, const FaultModel &model,
                   Rng &rng);

/** Count how many cells the model would corrupt (for reporting). */
long long expectedFaultyCells(long long logical_weights,
                              const FaultModel &model);

} // namespace prime::reram

#endif // PRIME_RERAM_FAULTS_HH
