/**
 * @file
 * ReRAM crossbar array model (paper Section II, Figures 1(c) and 2(b)).
 *
 * In computation mode the crossbar performs an analog matrix-vector
 * multiplication: input data are encoded as wordline voltages, synaptic
 * weights as cell conductances, and each bitline accumulates the current
 * sum_i V_i * G_ij.  PRIME stores positive and negative weights in two
 * crossbar arrays sharing input ports; an analog subtraction unit takes
 * their difference, which also cancels the HRS conductance offset
 * (G = Gmin + level * Gstep, and the Gmin terms subtract out).
 *
 * In memory mode the same array stores one bit per cell (SLC).
 */

#ifndef PRIME_RERAM_CROSSBAR_HH
#define PRIME_RERAM_CROSSBAR_HH

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "common/mutex.hh"
#include "common/rng.hh"
#include "common/thread_annotations.hh"
#include "reram/cell.hh"

namespace prime::reram {

/** Geometry and electrical configuration of one crossbar array. */
struct CrossbarParams
{
    /** Wordlines (inputs). */
    int rows = 256;
    /** Bitlines (outputs). */
    int cols = 256;
    /** MLC bits per cell in computation mode (paper: 4). */
    int cellBits = 4;
    /** Input voltage precision in bits (paper: 3, i.e. 8 levels). */
    int inputBits = 3;
    /** Device technology. */
    DeviceParams device;
    /**
     * Relative sigma of additive output-current read noise, on top of the
     * per-cell programming variation (Dot-Product Engine noise study [66]).
     */
    double readNoiseSigma = 0.0;
    /**
     * Interconnect resistance per cell pitch (Ohm); models first-order
     * IR drop along wordlines/bitlines (Liu et al. [74] compensate for
     * exactly this effect).  0 disables the wire model.
     */
    Ohm wireResistancePerCell = 0.0;

    /** Number of input voltage levels. */
    int inputLevels() const { return 1 << inputBits; }
    /** Number of conductance levels per cell. */
    int cellLevels() const { return 1 << cellBits; }
    /** Wordline voltage step between adjacent input levels. */
    Volt voltageStep() const
    {
        return device.readVoltage / (inputLevels() - 1);
    }
    /** Conductance step between adjacent MLC levels. */
    MicroSiemens conductanceStep() const
    {
        return (device.gMax() - device.gMin()) / (cellLevels() - 1);
    }
};

/**
 * One physical crossbar: a rows x cols grid of Cells with program, SLC
 * read/write, and analog/exact MVM operations.
 */
class Crossbar
{
  public:
    explicit Crossbar(const CrossbarParams &params);

    const CrossbarParams &params() const { return params_; }

    /** Program one cell to an MLC level (computation mode). */
    void programCell(int row, int col, int level, Rng *rng = nullptr);

    /** Program a full matrix of levels; levels[r][c] in [0, 2^cellBits). */
    void programLevels(const std::vector<std::vector<int>> &levels,
                       Rng *rng = nullptr);

    /** Level the write driver targeted for a cell. */
    int storedLevel(int row, int col) const;

    /** Actual programmed conductance of a cell. */
    MicroSiemens conductance(int row, int col) const;

    /**
     * Ideal integer MVM: out[j] = sum_i input[i] * level[i][j].  This is
     * the arithmetic the analog array implements when devices are perfect;
     * the composing scheme's correctness proofs are stated in these units.
     *
     * Runs over the cached level plane (a contiguous int matrix rebuilt
     * lazily after any cell mutation), not the Cell objects.
     */
    std::vector<std::int64_t>
    mvmExact(std::span<const int> input_levels) const;

    /**
     * Analog MVM through programmed conductances: returns per-bitline
     * current in uA, including programming variation (already baked into
     * the conductances) and optional read noise when @p rng is non-null.
     *
     * Runs over the cached effective-conductance plane, which folds the
     * per-position wordline/bitline IR drop into each cell's value.
     *
     * RNG-ordering contract: read noise is drawn *after* the full
     * accumulation, one gaussian per bitline in ascending column order.
     * Batched and cached-plane execution preserve exactly this order, so
     * results are bit-identical to the scalar path for a given Rng state.
     */
    std::vector<double>
    mvmAnalog(std::span<const int> input_levels, Rng *rng = nullptr) const;

    /**
     * Batched ideal MVM: one result row per input vector.  Equivalent to
     * calling mvmExact per sample, with the per-call dispatch (plane
     * check, bounds validation, allocation) amortized over the batch.
     */
    std::vector<std::vector<std::int64_t>>
    mvmExactBatch(const std::vector<std::vector<int>> &inputs) const;

    /**
     * Batched analog MVM.  Bit-identical to calling mvmAnalog once per
     * sample in order with the same @p rng (sample-major, then
     * column-ascending noise draws -- see the mvmAnalog RNG contract).
     */
    std::vector<std::vector<double>>
    mvmAnalogBatch(const std::vector<std::vector<int>> &inputs,
                   Rng *rng = nullptr) const;

    /**
     * Convert a differential bitline current (pos minus neg array) to
     * "level units", i.e. the value mvmExact would produce; the Gmin
     * offset is assumed cancelled by the subtraction unit.
     */
    double levelUnitsFromCurrent(double current_ua) const;

    /** Memory mode: SLC-write a row of bits. */
    void writeRowBits(int row, std::span<const std::uint8_t> bits,
                      Rng *rng = nullptr);

    /** Memory mode: SLC-read a row of bits. */
    std::vector<std::uint8_t> readRowBits(int row) const;

    /** Total writes absorbed by the most-worn cell (endurance proxy). */
    std::uint64_t maxWear() const;

    /** Sum of write events over all cells. */
    std::uint64_t totalWear() const;

  private:
    /** Bounds-checked flat index of a cell. */
    std::size_t index(int row, int col) const;

    /** Read-only cell access. */
    const Cell &at(int row, int col) const { return cells_[index(row, col)]; }

    /**
     * Mutable cell access: the single funnel for every mutation path
     * (program, SLC write), so the cached planes are invalidated in
     * exactly one place.
     */
    Cell &mutableAt(int row, int col)
    {
        planesDirty_.store(true, std::memory_order_release);
        return cells_[index(row, col)];
    }

    /** Rebuild the SoA planes from the Cell array (takes planesMutex_;
     *  the EXCLUDES makes re-entry a compile-time error). */
    void rebuildPlanes() const PRIME_EXCLUDES(planesMutex_);

    /** Planes, rebuilt if a mutation invalidated them. */
    void ensurePlanes() const
    {
        if (planesDirty_.load(std::memory_order_acquire))
            rebuildPlanes();
    }

    CrossbarParams params_;
    std::vector<Cell> cells_;

    // Cached structure-of-arrays planes for the MVM fast path, lazily
    // (re)built from cells_; any mutation flips planesDirty_.  The
    // read path is safe to share across threads: the first MVM after a
    // mutation rebuilds under planesMutex_ and publishes with a
    // release store of planesDirty_, which the acquire load in
    // ensurePlanes pairs with.  Mutations themselves must still be
    // externally ordered against concurrent MVMs (the evaluator's
    // fan-out keeps whole engines thread-private, and the controller
    // programs cells only between compute phases).  The planes are
    // deliberately NOT PRIME_GUARDED_BY(planesMutex_): the MVM read
    // path touches them lock-free after the release/acquire
    // publication above -- the protocol, not the rebuild lock, is the
    // read-side contract.
    mutable Mutex planesMutex_;               ///< serializes rebuilds
    mutable std::vector<int> levelPlane_;     ///< rows x cols levels
    mutable std::vector<double> gEffPlane_;   ///< rows x cols uS, IR folded
    mutable std::atomic<bool> planesDirty_{true};
};

/**
 * A positive/negative crossbar pair implementing signed weights, as in
 * paper Section III-E: the weight matrix is split into a positive-part
 * array and a negative-part array and the subtraction unit outputs their
 * difference.
 */
class DifferentialPair
{
  public:
    explicit DifferentialPair(const CrossbarParams &params);

    /**
     * Program signed weight levels w in (-2^cellBits, 2^cellBits): the
     * positive magnitude goes to the positive array, the negative
     * magnitude to the negative array.
     */
    void programSigned(const std::vector<std::vector<int>> &weights,
                       Rng *rng = nullptr);

    /** Exact signed integer MVM (reference semantics). */
    std::vector<std::int64_t>
    mvmExact(std::span<const int> input_levels) const;

    /**
     * Analog signed MVM in level units: both arrays driven by the same
     * input voltages, currents subtracted, then scaled to level units.
     */
    std::vector<double>
    mvmAnalog(std::span<const int> input_levels, Rng *rng = nullptr) const;

    /** Batched exact signed MVM (one output row per input vector). */
    std::vector<std::vector<std::int64_t>>
    mvmExactBatch(const std::vector<std::vector<int>> &inputs) const;

    /**
     * Batched analog signed MVM.  RNG order matches sequential calls:
     * per sample, the positive array's noise draws precede the negative
     * array's.
     */
    std::vector<std::vector<double>>
    mvmAnalogBatch(const std::vector<std::vector<int>> &inputs,
                   Rng *rng = nullptr) const;

    const Crossbar &positive() const { return pos_; }
    const Crossbar &negative() const { return neg_; }

  private:
    Crossbar pos_;
    Crossbar neg_;
};

} // namespace prime::reram

#endif // PRIME_RERAM_CROSSBAR_HH
