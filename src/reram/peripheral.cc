#include "reram/peripheral.hh"

#include <cmath>

#include "common/logging.hh"
#include "reram/composing.hh"

namespace prime::reram {

WordlineDriver::WordlineDriver(int input_bits, Volt read_voltage,
                               Volt write_voltage)
    : inputBits_(input_bits), readVoltage_(read_voltage),
      writeVoltage_(write_voltage)
{
    PRIME_ASSERT(input_bits >= 1 && input_bits <= 8,
                 "inputBits=", input_bits);
}

void
WordlineDriver::latchInput(int level)
{
    PRIME_ASSERT(level >= 0 && level < levelCount(),
                 "latch level ", level, " of ", levelCount());
    latchedLevel_ = level;
}

Volt
WordlineDriver::computeVoltage() const
{
    PRIME_ASSERT(mode_ == FfMode::Computation,
                 "compute voltage requested in memory mode");
    return readVoltage_ * static_cast<double>(latchedLevel_) /
           (levelCount() - 1);
}

double
SubtractionUnit::apply(double pos_current, double neg_current) const
{
    return bypass_ ? pos_current : pos_current - neg_current;
}

double
SigmoidUnit::apply(double x) const
{
    if (bypassed())
        return x;
    return 1.0 / (1.0 + std::exp(-x));
}

std::int64_t
ReluUnit::apply(std::int64_t x) const
{
    if (bypass_)
        return x;
    return x < 0 ? 0 : x;
}

ReconfigurableSenseAmp::ReconfigurableSenseAmp(int max_bits)
    : maxBits_(max_bits), bits_(max_bits)
{
    PRIME_ASSERT(max_bits >= 1 && max_bits <= 8, "Po=", max_bits);
}

void
ReconfigurableSenseAmp::setPrecision(int bits)
{
    PRIME_ASSERT(bits >= 1 && bits <= maxBits_,
                 "SA precision ", bits, " outside 1..", maxBits_);
    bits_ = bits;
}

std::int64_t
ReconfigurableSenseAmp::convert(std::int64_t full_value,
                                int full_scale_bits) const
{
    PRIME_ASSERT(full_scale_bits >= bits_,
                 "full scale ", full_scale_bits, " < precision ", bits_);
    return takeHighBits(full_value, full_scale_bits - bits_);
}

const std::array<std::array<int, 4>, 6> MaxPoolUnit::kDifferenceWeights = {{
    {{1, -1, 0, 0}},
    {{1, 0, -1, 0}},
    {{1, 0, 0, -1}},
    {{0, 1, -1, 0}},
    {{0, 1, 0, -1}},
    {{0, 0, 1, -1}},
}};

std::int64_t
MaxPoolUnit::pool4(const std::array<std::int64_t, 4> &inputs)
{
    // Six ReRAM dot products a.w for the difference-weight vectors; the
    // sign bits land in the winner-code register.
    winnerCode_ = 0;
    for (std::size_t k = 0; k < kDifferenceWeights.size(); ++k) {
        std::int64_t dot = 0;
        for (int i = 0; i < 4; ++i)
            dot += inputs[i] * kDifferenceWeights[k][i];
        if (dot >= 0)
            winnerCode_ |= static_cast<std::uint8_t>(1u << k);
    }
    // Decode: input i wins when it is >= every other input.  The three
    // comparisons involving input i appear at fixed code positions.
    // code bit k set means lhs >= rhs for comparison k:
    //   k=0: a1>=a2, k=1: a1>=a3, k=2: a1>=a4,
    //   k=3: a2>=a3, k=4: a2>=a4, k=5: a3>=a4.
    auto ge = [&](int k) { return (winnerCode_ >> k) & 1; };
    if (ge(0) && ge(1) && ge(2))
        winnerIndex_ = 0;
    else if (!ge(0) && ge(3) && ge(4))
        winnerIndex_ = 1;
    else if (!ge(1) && !ge(3) && ge(5))
        winnerIndex_ = 2;
    else
        winnerIndex_ = 3;
    return inputs[static_cast<std::size_t>(winnerIndex_)];
}

std::int64_t
MaxPoolUnit::poolN(const std::vector<std::int64_t> &inputs)
{
    PRIME_ASSERT(!inputs.empty(), "poolN needs at least one input");
    std::vector<std::int64_t> work = inputs;
    while (work.size() > 1) {
        std::vector<std::int64_t> next;
        next.reserve((work.size() + 3) / 4);
        for (std::size_t i = 0; i < work.size(); i += 4) {
            std::array<std::int64_t, 4> group;
            for (std::size_t j = 0; j < 4; ++j) {
                // Pad short tail groups with the group's first element so
                // padding can never win over a real value.
                group[j] = (i + j < work.size()) ? work[i + j] : work[i];
            }
            next.push_back(pool4(group));
        }
        work.swap(next);
    }
    return work.front();
}

std::int64_t
meanPool(const std::vector<std::int64_t> &inputs)
{
    PRIME_ASSERT(!inputs.empty(), "meanPool needs at least one input");
    // Dot product with [1/n ... 1/n] realized in conductances; the analog
    // result is digitized round-to-nearest by the SA.
    double sum = 0.0;
    for (std::int64_t v : inputs)
        sum += static_cast<double>(v);
    return static_cast<std::int64_t>(
        std::llround(sum / static_cast<double>(inputs.size())));
}

} // namespace prime::reram
