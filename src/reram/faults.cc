#include "reram/faults.hh"

#include <cmath>

#include "common/logging.hh"

namespace prime::reram {

std::vector<std::vector<int>>
injectWeightFaults(const std::vector<std::vector<int>> &weights,
                   const ComposingParams &p, const FaultModel &model,
                   Rng &rng)
{
    PRIME_ASSERT(model.cellFaultRate >= 0.0 && model.cellFaultRate <= 1.0,
                 "fault rate ", model.cellFaultRate);
    const int max_level = (1 << p.cellBits) - 1;

    auto stuck = [&](int nominal) {
        if (!rng.bernoulli(model.cellFaultRate))
            return nominal;
        return rng.bernoulli(model.lrsFraction) ? max_level : 0;
    };

    std::vector<std::vector<int>> out(weights.size());
    for (std::size_t r = 0; r < weights.size(); ++r) {
        out[r].resize(weights[r].size());
        for (std::size_t c = 0; c < weights[r].size(); ++c) {
            const int w = weights[r][c];
            const int mag = std::abs(w);
            PRIME_ASSERT(mag < (1 << p.weightBits),
                         "weight ", w, " out of range");
            // Nominal cell levels under the composing layout.
            int pos_hi = 0, pos_lo = 0, neg_hi = 0, neg_lo = 0;
            if (w > 0) {
                pos_hi = mag >> p.cellBits;
                pos_lo = mag & max_level;
            } else if (w < 0) {
                neg_hi = mag >> p.cellBits;
                neg_lo = mag & max_level;
            }
            // Independent stuck-at events on all four cells.
            pos_hi = stuck(pos_hi);
            pos_lo = stuck(pos_lo);
            neg_hi = stuck(neg_hi);
            neg_lo = stuck(neg_lo);
            out[r][c] = (pos_hi << p.cellBits) + pos_lo -
                        ((neg_hi << p.cellBits) + neg_lo);
        }
    }
    return out;
}

long long
expectedFaultyCells(long long logical_weights, const FaultModel &model)
{
    // Four physical cells per logical weight (composing + pos/neg).
    return static_cast<long long>(
        std::llround(4.0 * static_cast<double>(logical_weights) *
                     model.cellFaultRate));
}

} // namespace prime::reram
