#include "reram/composing.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace prime::reram {

int
pnForInputCount(int n)
{
    int pn = 0;
    while ((1 << pn) < n)
        ++pn;
    return pn;
}

std::pair<int, int>
splitInput(int value, const ComposingParams &p)
{
    PRIME_ASSERT(value >= 0 && value < (1 << p.inputBits),
                 "input ", value, " out of ", p.inputBits, "-bit range");
    const int mask = (1 << p.inputPhaseBits) - 1;
    return {value >> p.inputPhaseBits, value & mask};
}

std::pair<int, int>
splitWeight(int value, const ComposingParams &p)
{
    const int max_mag = (1 << p.weightBits) - 1;
    PRIME_ASSERT(value >= -max_mag && value <= max_mag,
                 "weight ", value, " out of ", p.weightBits, "-bit range");
    const int sign = value < 0 ? -1 : 1;
    const int mag = value < 0 ? -value : value;
    const int mask = (1 << p.cellBits) - 1;
    return {sign * (mag >> p.cellBits), sign * (mag & mask)};
}

std::int64_t
takeHighBits(std::int64_t x, int shift)
{
    if (shift <= 0)
        return x << -shift;
    // Arithmetic shift == floor division for negative values on all
    // implementations we target; use explicit floor division for clarity.
    const std::int64_t div = std::int64_t{1} << shift;
    std::int64_t q = x / div;
    if (x % div != 0 && x < 0)
        --q;
    return q;
}

std::int64_t
composedTargetExact(std::span<const int> inputs, std::span<const int> weights,
                    const ComposingParams &p)
{
    PRIME_ASSERT(inputs.size() == weights.size(), "size mismatch");
    PRIME_ASSERT(p.consistent(), "inconsistent composing parameters");
    std::int64_t full = 0;
    for (std::size_t i = 0; i < inputs.size(); ++i)
        full += static_cast<std::int64_t>(inputs[i]) * weights[i];
    const int pn = pnForInputCount(static_cast<int>(inputs.size()));
    return takeHighBits(full, p.inputBits + p.weightBits + pn - p.outputBits);
}

int
defaultOutputShift(const ComposingParams &p, int input_count)
{
    return p.inputBits + p.weightBits + pnForInputCount(input_count) -
           p.outputBits;
}

/** SA register saturation: signed (Po+1)-bit window. */
static std::int64_t
saturateToSa(std::int64_t code, int output_bits)
{
    const std::int64_t hi = (std::int64_t{1} << output_bits) - 1;
    const std::int64_t lo = -(std::int64_t{1} << output_bits);
    return std::clamp(code, lo, hi);
}

/**
 * Assemble the target from the four component dot products under a given
 * total shift.  Rfull = 2^((Pin+Pw)/2) HH + 2^(Pw/2) HL + 2^(Pin/2) LH
 * + LL, so component c's own shift is total_shift - m_c; a negative
 * component shift means the digital adder scales the (saturated) raw
 * code up instead.
 */
/**
 * Round-to-nearest variant of takeHighBits: the SA reference ladder is
 * offset by half an LSB, the standard sensing trick that centers the
 * conversion error instead of biasing it low.
 */
static std::int64_t
takeHighBitsRounded(std::int64_t x, int shift)
{
    if (shift <= 0)
        return x << -shift;
    return takeHighBits(x + (std::int64_t{1} << (shift - 1)), shift);
}

std::int64_t
composedAssemble(std::int64_t hh, std::int64_t hl, std::int64_t lh,
                 std::int64_t ll, const ComposingParams &p, int total_shift)
{
    struct Part
    {
        std::int64_t value;
        int magnitude;
    };
    const Part parts[4] = {
        {hh, (p.inputBits + p.weightBits) / 2},
        {hl, p.weightBits / 2},
        {lh, p.inputBits / 2},
        {ll, 0},
    };
    std::int64_t acc = 0;
    for (const Part &part : parts) {
        const int shift = total_shift - part.magnitude;
        if (shift >= 0) {
            // The SA window sits `shift` bits up; codes below it vanish
            // (half-LSB offset centers the error).
            acc += saturateToSa(takeHighBitsRounded(part.value, shift),
                                p.outputBits);
        } else {
            // Window finer than one level unit is not physical; the SA
            // digitizes at natural resolution and the precision-control
            // adder applies the up-shift digitally.
            acc += saturateToSa(part.value, p.outputBits) << -shift;
        }
    }
    return acc;
}

std::int64_t
composedApproxShifted(std::span<const int> inputs,
                      std::span<const int> weights,
                      const ComposingParams &p, int total_shift)
{
    PRIME_ASSERT(inputs.size() == weights.size(), "size mismatch");
    PRIME_ASSERT(p.consistent(), "inconsistent composing parameters");
    std::int64_t hh = 0, hl = 0, lh = 0, ll = 0;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        auto [ih, il] = splitInput(inputs[i], p);
        auto [wh, wl] = splitWeight(weights[i], p);
        hh += static_cast<std::int64_t>(ih) * wh;
        hl += static_cast<std::int64_t>(il) * wh;
        lh += static_cast<std::int64_t>(ih) * wl;
        ll += static_cast<std::int64_t>(il) * wl;
    }
    return composedAssemble(hh, hl, lh, ll, p, total_shift);
}

std::int64_t
composedApprox(std::span<const int> inputs, std::span<const int> weights,
               const ComposingParams &p)
{
    return composedApproxShifted(
        inputs, weights, p,
        defaultOutputShift(p, static_cast<int>(inputs.size())));
}

int
calibratedOutputShift(const std::vector<std::vector<int>> &weights,
                      const ComposingParams &p)
{
    PRIME_ASSERT(!weights.empty(), "empty weights");
    const int cols = static_cast<int>(weights[0].size());
    const std::int64_t max_in = (std::int64_t{1} << p.inputBits) - 1;
    std::int64_t worst = 1;
    for (int c = 0; c < cols; ++c) {
        std::int64_t bound = 0;
        for (const auto &row : weights)
            bound += max_in * std::abs(static_cast<std::int64_t>(row[c]));
        worst = std::max(worst, bound);
    }
    int bits = 0;
    while ((std::int64_t{1} << bits) <= worst)
        ++bits;
    return std::max(0, bits - p.outputBits);
}

ComposedMatrixEngine::ComposedMatrixEngine(int rows, int cols,
                                           const ComposingParams &p,
                                           const CrossbarParams &array_params)
    : rows_(rows), cols_(cols), pn_(pnForInputCount(rows)), composing_(p),
      outputShift_(defaultOutputShift(p, rows)),
      arrays_([&] {
          CrossbarParams cp = array_params;
          cp.rows = rows;
          cp.cols = cols * 2;  // adjacent bitlines: high/low weight halves
          cp.cellBits = p.cellBits;
          cp.inputBits = p.inputPhaseBits;
          return cp;
      }())
{
    PRIME_ASSERT(p.consistent(), "inconsistent composing parameters");
    PRIME_ASSERT(rows > 0 && cols > 0, "bad engine geometry");
}

void
ComposedMatrixEngine::programWeights(
    const std::vector<std::vector<int>> &weights, Rng *rng)
{
    PRIME_ASSERT(static_cast<int>(weights.size()) == rows_,
                 "weights rows=", weights.size());
    std::vector<std::vector<int>> physical(
        rows_, std::vector<int>(cols_ * 2, 0));
    for (int r = 0; r < rows_; ++r) {
        PRIME_ASSERT(static_cast<int>(weights[r].size()) == cols_,
                     "weights cols=", weights[r].size());
        for (int c = 0; c < cols_; ++c) {
            auto [wh, wl] = splitWeight(weights[r][c], composing_);
            physical[r][2 * c] = wh;
            physical[r][2 * c + 1] = wl;
        }
    }
    arrays_.programSigned(physical, rng);
    logicalWeights_ = weights;
}

std::vector<std::int64_t>
ComposedMatrixEngine::assemble(const std::vector<std::int64_t> &hh,
                               const std::vector<std::int64_t> &hl,
                               const std::vector<std::int64_t> &lh,
                               const std::vector<std::int64_t> &ll) const
{
    std::vector<std::int64_t> out(cols_, 0);
    for (int c = 0; c < cols_; ++c)
        out[c] = composedAssemble(hh[c], hl[c], lh[c], ll[c], composing_,
                                  outputShift_);
    return out;
}

void
ComposedMatrixEngine::calibrateOutputShift()
{
    PRIME_ASSERT(!logicalWeights_.empty(), "weights not programmed");
    outputShift_ = calibratedOutputShift(logicalWeights_, composing_);
}

std::vector<std::int64_t>
ComposedMatrixEngine::mvmExact(std::span<const int> inputs) const
{
    PRIME_ASSERT(static_cast<int>(inputs.size()) == rows_,
                 "inputs=", inputs.size());
    std::vector<int> high(rows_), low(rows_);
    for (int r = 0; r < rows_; ++r) {
        auto [ih, il] = splitInput(inputs[r], composing_);
        high[r] = ih;
        low[r] = il;
    }
    // High input phase: even bitlines give HH, odd give LH.
    std::vector<std::int64_t> pass_h = arrays_.mvmExact(high);
    // Low input phase: even bitlines give HL, odd give LL.
    std::vector<std::int64_t> pass_l = arrays_.mvmExact(low);
    std::vector<std::int64_t> hh(cols_), hl(cols_), lh(cols_), ll(cols_);
    for (int c = 0; c < cols_; ++c) {
        hh[c] = pass_h[2 * c];
        lh[c] = pass_h[2 * c + 1];
        hl[c] = pass_l[2 * c];
        ll[c] = pass_l[2 * c + 1];
    }
    return assemble(hh, hl, lh, ll);
}

std::vector<std::int64_t>
ComposedMatrixEngine::mvmAnalog(std::span<const int> inputs, Rng *rng) const
{
    PRIME_ASSERT(static_cast<int>(inputs.size()) == rows_,
                 "inputs=", inputs.size());
    std::vector<int> high(rows_), low(rows_);
    for (int r = 0; r < rows_; ++r) {
        auto [ih, il] = splitInput(inputs[r], composing_);
        high[r] = ih;
        low[r] = il;
    }
    std::vector<double> pass_h = arrays_.mvmAnalog(high, rng);
    std::vector<double> pass_l = arrays_.mvmAnalog(low, rng);
    // The SA digitizes each component to the nearest level-unit code
    // before the precision-control adder truncates and accumulates.
    auto digitize = [](double x) {
        return static_cast<std::int64_t>(std::llround(x));
    };
    std::vector<std::int64_t> hh(cols_), hl(cols_), lh(cols_), ll(cols_);
    for (int c = 0; c < cols_; ++c) {
        hh[c] = digitize(pass_h[2 * c]);
        lh[c] = digitize(pass_h[2 * c + 1]);
        hl[c] = digitize(pass_l[2 * c]);
        ll[c] = digitize(pass_l[2 * c + 1]);
    }
    return assemble(hh, hl, lh, ll);
}

std::vector<std::vector<std::int64_t>>
ComposedMatrixEngine::mvmExactBatch(
    const std::vector<std::vector<int>> &inputs) const
{
    std::vector<std::vector<std::int64_t>> out;
    out.reserve(inputs.size());
    std::vector<int> high(static_cast<std::size_t>(rows_)),
        low(static_cast<std::size_t>(rows_));
    for (const std::vector<int> &sample : inputs) {
        PRIME_ASSERT(static_cast<int>(sample.size()) == rows_,
                     "inputs=", sample.size());
        for (int r = 0; r < rows_; ++r) {
            auto [ih, il] = splitInput(sample[static_cast<std::size_t>(r)],
                                       composing_);
            high[static_cast<std::size_t>(r)] = ih;
            low[static_cast<std::size_t>(r)] = il;
        }
        std::vector<std::int64_t> pass_h = arrays_.mvmExact(high);
        std::vector<std::int64_t> pass_l = arrays_.mvmExact(low);
        std::vector<std::int64_t> hh(cols_), hl(cols_), lh(cols_),
            ll(cols_);
        for (int c = 0; c < cols_; ++c) {
            hh[c] = pass_h[2 * c];
            lh[c] = pass_h[2 * c + 1];
            hl[c] = pass_l[2 * c];
            ll[c] = pass_l[2 * c + 1];
        }
        out.push_back(assemble(hh, hl, lh, ll));
    }
    return out;
}

std::vector<std::vector<std::int64_t>>
ComposedMatrixEngine::mvmAnalogBatch(
    const std::vector<std::vector<int>> &inputs, Rng *rng) const
{
    // Sample-major, high-phase-then-low-phase: the same draw order as
    // sequential mvmAnalog calls, keeping batched results bit-exact.
    std::vector<std::vector<std::int64_t>> out;
    out.reserve(inputs.size());
    for (const std::vector<int> &sample : inputs)
        out.push_back(mvmAnalog(sample, rng));
    return out;
}

std::vector<std::int64_t>
ComposedMatrixEngine::mvmFull(std::span<const int> inputs) const
{
    PRIME_ASSERT(!logicalWeights_.empty(), "weights not programmed");
    PRIME_ASSERT(static_cast<int>(inputs.size()) == rows_,
                 "inputs=", inputs.size());
    std::vector<std::int64_t> out(cols_, 0);
    for (int c = 0; c < cols_; ++c)
        for (int r = 0; r < rows_; ++r)
            out[c] += static_cast<std::int64_t>(inputs[r]) *
                      logicalWeights_[r][c];
    return out;
}

std::vector<std::int64_t>
ComposedMatrixEngine::targetExact(std::span<const int> inputs) const
{
    PRIME_ASSERT(!logicalWeights_.empty(), "weights not programmed");
    std::vector<std::int64_t> out(cols_);
    for (int c = 0; c < cols_; ++c) {
        std::int64_t full = 0;
        for (int r = 0; r < rows_; ++r)
            full += static_cast<std::int64_t>(inputs[r]) *
                    logicalWeights_[r][c];
        out[c] = takeHighBits(full, outputShift_);
    }
    return out;
}

} // namespace prime::reram
