#include "reram/crossbar.hh"

#include <algorithm>

#include "common/logging.hh"

namespace prime::reram {

namespace {

// Runtime-dispatched SIMD clones of the two MVM inner loops (GCC/ELF
// x86-64 only; elsewhere the plain -O3 loop is used).  The integer
// kernel is exact under any ISA.  The double kernel deliberately stops
// at "avx2" (no FMA target): mul-then-add per element is identically
// rounded on every clone, keeping analog results bit-exact across
// machines.
//
// Disabled under sanitizers: target_clones emits GNU ifunc resolvers,
// which the dynamic linker runs during relocation -- before the
// ASan/TSan runtime has initialized -- crashing every binary that
// links this TU.  The PRIME_SANITIZE builds take the plain loop.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define PRIME_MVM_NO_CLONES 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer) || \
    __has_feature(memory_sanitizer)
#define PRIME_MVM_NO_CLONES 1
#endif
#endif

#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && \
    defined(__ELF__) && !defined(PRIME_MVM_NO_CLONES)
#define PRIME_MVM_INT_CLONES \
    __attribute__((target_clones("default", "avx2", "arch=x86-64-v4")))
#define PRIME_MVM_FP_CLONES \
    __attribute__((target_clones("default", "avx2")))
#else
#define PRIME_MVM_INT_CLONES
#define PRIME_MVM_FP_CLONES
#endif

/** acc[c] += in * levels[c] over one cached-plane row. */
PRIME_MVM_INT_CLONES void
accumulateLevelRow(std::int32_t *acc, const int *levels, std::int32_t in,
                   int cols)
{
    for (int c = 0; c < cols; ++c)
        acc[c] += in * levels[c];
}

/** acc[c] += v * geff[c] over one cached-plane row. */
PRIME_MVM_FP_CLONES void
accumulateCurrentRow(double *acc, const double *geff, double v, int cols)
{
    for (int c = 0; c < cols; ++c)
        acc[c] += v * geff[c];
}

} // namespace

Crossbar::Crossbar(const CrossbarParams &params)
    : params_(params),
      cells_(static_cast<std::size_t>(params.rows) * params.cols)
{
    PRIME_ASSERT(params.rows > 0 && params.cols > 0,
                 "bad geometry ", params.rows, "x", params.cols);
    PRIME_ASSERT(params.inputBits >= 1 && params.inputBits <= 8,
                 "inputBits=", params.inputBits);
}

std::size_t
Crossbar::index(int row, int col) const
{
    PRIME_ASSERT(row >= 0 && row < params_.rows, "row=", row);
    PRIME_ASSERT(col >= 0 && col < params_.cols, "col=", col);
    return static_cast<std::size_t>(row) * params_.cols + col;
}

void
Crossbar::rebuildPlanes() const
{
    MutexLock lock(planesMutex_);
    // Double-checked: a concurrent MVM may have rebuilt while this
    // thread waited for the lock.
    if (!planesDirty_.load(std::memory_order_acquire))
        return;
    const std::size_t n = cells_.size();
    levelPlane_.resize(n);
    gEffPlane_.resize(n);
    const bool ir_drop = params_.wireResistancePerCell > 0.0;
    for (int r = 0; r < params_.rows; ++r) {
        const std::size_t base = static_cast<std::size_t>(r) * params_.cols;
        for (int c = 0; c < params_.cols; ++c) {
            const Cell &cell = cells_[base + c];
            levelPlane_[base + c] = cell.level();
            double g = cell.conductance();
            if (ir_drop && g > 0.0) {
                // First-order IR drop: the wire segments from the driver
                // along the wordline (c+1 pitches) and down the bitline
                // to the SA (rows - r pitches) sit in series with the
                // cell.
                const Ohm r_wire =
                    params_.wireResistancePerCell *
                    static_cast<double>((c + 1) + (params_.rows - r));
                g = 1.0 / (1.0 / g + r_wire * 1.0e-6);  // uS vs Ohm
            }
            gEffPlane_[base + c] = g;
        }
    }
    planesDirty_.store(false, std::memory_order_release);
}

void
Crossbar::programCell(int row, int col, int level, Rng *rng)
{
    mutableAt(row, col).program(params_.device, level, params_.cellBits,
                                rng);
}

void
Crossbar::programLevels(const std::vector<std::vector<int>> &levels, Rng *rng)
{
    PRIME_ASSERT(static_cast<int>(levels.size()) == params_.rows,
                 "levels rows=", levels.size());
    for (int r = 0; r < params_.rows; ++r) {
        PRIME_ASSERT(static_cast<int>(levels[r].size()) == params_.cols,
                     "levels cols=", levels[r].size(), " at row ", r);
        for (int c = 0; c < params_.cols; ++c)
            programCell(r, c, levels[r][c], rng);
    }
}

int
Crossbar::storedLevel(int row, int col) const
{
    return at(row, col).level();
}

MicroSiemens
Crossbar::conductance(int row, int col) const
{
    return at(row, col).conductance();
}

std::vector<std::int64_t>
Crossbar::mvmExact(std::span<const int> input_levels) const
{
    PRIME_ASSERT(static_cast<int>(input_levels.size()) == params_.rows,
                 "inputs=", input_levels.size());
    ensurePlanes();
    const int cols = params_.cols;
    std::vector<std::int64_t> out(cols, 0);
    // Accumulate in 32 bits over bounded row chunks, widening to the
    // 64-bit result between chunks: one product is at most 255 * 255
    // (8-bit inputs, 8-bit MLC levels), so 16384 rows stay under 2^31
    // with margin, and the int32 inner loop vectorizes.
    constexpr int kChunkRows = 16384;
    std::vector<std::int32_t> acc(static_cast<std::size_t>(cols));
    for (int r0 = 0; r0 < params_.rows; r0 += kChunkRows) {
        const int r1 = std::min(params_.rows, r0 + kChunkRows);
        std::fill(acc.begin(), acc.end(), 0);
        bool any = false;
        for (int r = r0; r < r1; ++r) {
            const std::int32_t in = input_levels[r];
            PRIME_ASSERT(in >= 0 && in < params_.inputLevels(),
                         "input level ", in, " out of range at row ", r);
            if (in == 0)
                continue;
            any = true;
            accumulateLevelRow(acc.data(),
                               levelPlane_.data() +
                                   static_cast<std::size_t>(r) * cols,
                               in, cols);
        }
        if (any)
            for (int c = 0; c < cols; ++c)
                out[c] += acc[static_cast<std::size_t>(c)];
    }
    return out;
}

std::vector<double>
Crossbar::mvmAnalog(std::span<const int> input_levels, Rng *rng) const
{
    PRIME_ASSERT(static_cast<int>(input_levels.size()) == params_.rows,
                 "inputs=", input_levels.size());
    ensurePlanes();
    const Volt v_step = params_.voltageStep();
    const int cols = params_.cols;
    std::vector<double> current(cols, 0.0);
    for (int r = 0; r < params_.rows; ++r) {
        const Volt v = v_step * input_levels[r];
        if (v == 0.0)
            continue;
        accumulateCurrentRow(current.data(),
                             gEffPlane_.data() +
                                 static_cast<std::size_t>(r) * cols,
                             v, cols);
    }
    if (rng && params_.readNoiseSigma > 0.0) {
        // Output-referred noise proportional to the array's full-scale
        // current, per column.  Drawn after accumulation, ascending
        // column order: the RNG contract every execution path keeps.
        const double full_scale = params_.device.readVoltage *
                                  params_.device.gMax() * params_.rows;
        for (double &i : current)
            i += rng->gaussian(0.0, params_.readNoiseSigma * full_scale);
    }
    return current;
}

std::vector<std::vector<std::int64_t>>
Crossbar::mvmExactBatch(const std::vector<std::vector<int>> &inputs) const
{
    ensurePlanes();
    std::vector<std::vector<std::int64_t>> out;
    out.reserve(inputs.size());
    for (const std::vector<int> &in : inputs)
        out.push_back(mvmExact(in));
    return out;
}

std::vector<std::vector<double>>
Crossbar::mvmAnalogBatch(const std::vector<std::vector<int>> &inputs,
                         Rng *rng) const
{
    ensurePlanes();
    std::vector<std::vector<double>> out;
    out.reserve(inputs.size());
    for (const std::vector<int> &in : inputs)
        out.push_back(mvmAnalog(in, rng));
    return out;
}

double
Crossbar::levelUnitsFromCurrent(double current_ua) const
{
    return current_ua / (params_.voltageStep() * params_.conductanceStep());
}

void
Crossbar::writeRowBits(int row, std::span<const std::uint8_t> bits, Rng *rng)
{
    PRIME_ASSERT(static_cast<int>(bits.size()) == params_.cols,
                 "bits=", bits.size());
    for (int c = 0; c < params_.cols; ++c) {
        if (bits[c])
            mutableAt(row, c).set(params_.device, rng);
        else
            mutableAt(row, c).reset(params_.device, rng);
    }
}

std::vector<std::uint8_t>
Crossbar::readRowBits(int row) const
{
    std::vector<std::uint8_t> bits(params_.cols);
    for (int c = 0; c < params_.cols; ++c)
        bits[c] = at(row, c).readBit(params_.device) ? 1 : 0;
    return bits;
}

std::uint64_t
Crossbar::maxWear() const
{
    std::uint64_t w = 0;
    for (const Cell &cell : cells_)
        w = std::max(w, cell.wear());
    return w;
}

std::uint64_t
Crossbar::totalWear() const
{
    std::uint64_t w = 0;
    for (const Cell &cell : cells_)
        w += cell.wear();
    return w;
}

DifferentialPair::DifferentialPair(const CrossbarParams &params)
    : pos_(params), neg_(params)
{
}

void
DifferentialPair::programSigned(const std::vector<std::vector<int>> &weights,
                                Rng *rng)
{
    const CrossbarParams &p = pos_.params();
    PRIME_ASSERT(static_cast<int>(weights.size()) == p.rows,
                 "weights rows=", weights.size());
    const int max_mag = p.cellLevels() - 1;
    for (int r = 0; r < p.rows; ++r) {
        PRIME_ASSERT(static_cast<int>(weights[r].size()) == p.cols,
                     "weights cols=", weights[r].size());
        for (int c = 0; c < p.cols; ++c) {
            const int w = weights[r][c];
            PRIME_ASSERT(w >= -max_mag && w <= max_mag,
                         "signed weight ", w, " exceeds ", max_mag);
            pos_.programCell(r, c, w > 0 ? w : 0, rng);
            neg_.programCell(r, c, w < 0 ? -w : 0, rng);
        }
    }
}

std::vector<std::int64_t>
DifferentialPair::mvmExact(std::span<const int> input_levels) const
{
    std::vector<std::int64_t> p = pos_.mvmExact(input_levels);
    std::vector<std::int64_t> n = neg_.mvmExact(input_levels);
    for (std::size_t i = 0; i < p.size(); ++i)
        p[i] -= n[i];
    return p;
}

std::vector<double>
DifferentialPair::mvmAnalog(std::span<const int> input_levels, Rng *rng) const
{
    std::vector<double> p = pos_.mvmAnalog(input_levels, rng);
    std::vector<double> n = neg_.mvmAnalog(input_levels, rng);
    std::vector<double> out(p.size());
    for (std::size_t i = 0; i < p.size(); ++i)
        out[i] = pos_.levelUnitsFromCurrent(p[i] - n[i]);
    return out;
}

std::vector<std::vector<std::int64_t>>
DifferentialPair::mvmExactBatch(
    const std::vector<std::vector<int>> &inputs) const
{
    std::vector<std::vector<std::int64_t>> out;
    out.reserve(inputs.size());
    for (const std::vector<int> &in : inputs)
        out.push_back(mvmExact(in));
    return out;
}

std::vector<std::vector<double>>
DifferentialPair::mvmAnalogBatch(const std::vector<std::vector<int>> &inputs,
                                 Rng *rng) const
{
    std::vector<std::vector<double>> out;
    out.reserve(inputs.size());
    for (const std::vector<int> &in : inputs)
        out.push_back(mvmAnalog(in, rng));
    return out;
}

} // namespace prime::reram
