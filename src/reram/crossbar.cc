#include "reram/crossbar.hh"

#include <algorithm>

#include "common/logging.hh"

namespace prime::reram {

Crossbar::Crossbar(const CrossbarParams &params)
    : params_(params),
      cells_(static_cast<std::size_t>(params.rows) * params.cols)
{
    PRIME_ASSERT(params.rows > 0 && params.cols > 0,
                 "bad geometry ", params.rows, "x", params.cols);
    PRIME_ASSERT(params.inputBits >= 1 && params.inputBits <= 8,
                 "inputBits=", params.inputBits);
}

const Cell &
Crossbar::at(int row, int col) const
{
    PRIME_ASSERT(row >= 0 && row < params_.rows, "row=", row);
    PRIME_ASSERT(col >= 0 && col < params_.cols, "col=", col);
    return cells_[static_cast<std::size_t>(row) * params_.cols + col];
}

Cell &
Crossbar::at(int row, int col)
{
    return const_cast<Cell &>(
        static_cast<const Crossbar &>(*this).at(row, col));
}

void
Crossbar::programCell(int row, int col, int level, Rng *rng)
{
    at(row, col).program(params_.device, level, params_.cellBits, rng);
}

void
Crossbar::programLevels(const std::vector<std::vector<int>> &levels, Rng *rng)
{
    PRIME_ASSERT(static_cast<int>(levels.size()) == params_.rows,
                 "levels rows=", levels.size());
    for (int r = 0; r < params_.rows; ++r) {
        PRIME_ASSERT(static_cast<int>(levels[r].size()) == params_.cols,
                     "levels cols=", levels[r].size(), " at row ", r);
        for (int c = 0; c < params_.cols; ++c)
            programCell(r, c, levels[r][c], rng);
    }
}

int
Crossbar::storedLevel(int row, int col) const
{
    return at(row, col).level();
}

MicroSiemens
Crossbar::conductance(int row, int col) const
{
    return at(row, col).conductance();
}

std::vector<std::int64_t>
Crossbar::mvmExact(std::span<const int> input_levels) const
{
    PRIME_ASSERT(static_cast<int>(input_levels.size()) == params_.rows,
                 "inputs=", input_levels.size());
    std::vector<std::int64_t> out(params_.cols, 0);
    for (int r = 0; r < params_.rows; ++r) {
        const int in = input_levels[r];
        PRIME_ASSERT(in >= 0 && in < params_.inputLevels(),
                     "input level ", in, " out of range at row ", r);
        if (in == 0)
            continue;
        const Cell *row_cells = &cells_[static_cast<std::size_t>(r) *
                                        params_.cols];
        for (int c = 0; c < params_.cols; ++c)
            out[c] += static_cast<std::int64_t>(in) * row_cells[c].level();
    }
    return out;
}

std::vector<double>
Crossbar::mvmAnalog(std::span<const int> input_levels, Rng *rng) const
{
    PRIME_ASSERT(static_cast<int>(input_levels.size()) == params_.rows,
                 "inputs=", input_levels.size());
    const Volt v_step = params_.voltageStep();
    const bool ir_drop = params_.wireResistancePerCell > 0.0;
    std::vector<double> current(params_.cols, 0.0);
    for (int r = 0; r < params_.rows; ++r) {
        const Volt v = v_step * input_levels[r];
        if (v == 0.0)
            continue;
        const Cell *row_cells = &cells_[static_cast<std::size_t>(r) *
                                        params_.cols];
        for (int c = 0; c < params_.cols; ++c) {
            double g = row_cells[c].conductance();
            if (ir_drop && g > 0.0) {
                // First-order IR drop: the wire segments from the driver
                // along the wordline (c+1 pitches) and down the bitline
                // to the SA (rows - r pitches) sit in series with the
                // cell.
                const Ohm r_wire =
                    params_.wireResistancePerCell *
                    static_cast<double>((c + 1) + (params_.rows - r));
                g = 1.0 / (1.0 / g + r_wire * 1.0e-6);  // uS vs Ohm
            }
            current[c] += v * g;
        }
    }
    if (rng && params_.readNoiseSigma > 0.0) {
        // Output-referred noise proportional to the array's full-scale
        // current, per column.
        const double full_scale = params_.device.readVoltage *
                                  params_.device.gMax() * params_.rows;
        for (double &i : current)
            i += rng->gaussian(0.0, params_.readNoiseSigma * full_scale);
    }
    return current;
}

double
Crossbar::levelUnitsFromCurrent(double current_ua) const
{
    return current_ua / (params_.voltageStep() * params_.conductanceStep());
}

void
Crossbar::writeRowBits(int row, std::span<const std::uint8_t> bits, Rng *rng)
{
    PRIME_ASSERT(static_cast<int>(bits.size()) == params_.cols,
                 "bits=", bits.size());
    for (int c = 0; c < params_.cols; ++c) {
        if (bits[c])
            at(row, c).set(params_.device, rng);
        else
            at(row, c).reset(params_.device, rng);
    }
}

std::vector<std::uint8_t>
Crossbar::readRowBits(int row) const
{
    std::vector<std::uint8_t> bits(params_.cols);
    for (int c = 0; c < params_.cols; ++c)
        bits[c] = at(row, c).readBit(params_.device) ? 1 : 0;
    return bits;
}

std::uint64_t
Crossbar::maxWear() const
{
    std::uint64_t w = 0;
    for (const Cell &cell : cells_)
        w = std::max(w, cell.wear());
    return w;
}

std::uint64_t
Crossbar::totalWear() const
{
    std::uint64_t w = 0;
    for (const Cell &cell : cells_)
        w += cell.wear();
    return w;
}

DifferentialPair::DifferentialPair(const CrossbarParams &params)
    : pos_(params), neg_(params)
{
}

void
DifferentialPair::programSigned(const std::vector<std::vector<int>> &weights,
                                Rng *rng)
{
    const CrossbarParams &p = pos_.params();
    PRIME_ASSERT(static_cast<int>(weights.size()) == p.rows,
                 "weights rows=", weights.size());
    const int max_mag = p.cellLevels() - 1;
    for (int r = 0; r < p.rows; ++r) {
        PRIME_ASSERT(static_cast<int>(weights[r].size()) == p.cols,
                     "weights cols=", weights[r].size());
        for (int c = 0; c < p.cols; ++c) {
            const int w = weights[r][c];
            PRIME_ASSERT(w >= -max_mag && w <= max_mag,
                         "signed weight ", w, " exceeds ", max_mag);
            pos_.programCell(r, c, w > 0 ? w : 0, rng);
            neg_.programCell(r, c, w < 0 ? -w : 0, rng);
        }
    }
}

std::vector<std::int64_t>
DifferentialPair::mvmExact(std::span<const int> input_levels) const
{
    std::vector<std::int64_t> p = pos_.mvmExact(input_levels);
    std::vector<std::int64_t> n = neg_.mvmExact(input_levels);
    for (std::size_t i = 0; i < p.size(); ++i)
        p[i] -= n[i];
    return p;
}

std::vector<double>
DifferentialPair::mvmAnalog(std::span<const int> input_levels, Rng *rng) const
{
    std::vector<double> p = pos_.mvmAnalog(input_levels, rng);
    std::vector<double> n = neg_.mvmAnalog(input_levels, rng);
    std::vector<double> out(p.size());
    for (std::size_t i = 0; i < p.size(); ++i)
        out[i] = pos_.levelUnitsFromCurrent(p[i] - n[i]);
    return out;
}

} // namespace prime::reram
