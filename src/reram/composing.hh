/**
 * @file
 * Input and synapse composing scheme (paper Section III-D, Eq. 2-9).
 *
 * Device reality: wordline drivers provide only 3-bit input voltages,
 * cells hold only 4-bit conductance levels, and the reconfigurable SA
 * senses at most 6 output bits.  PRIME composes
 *
 *   - one 6-bit input from two 3-bit input phases fed sequentially
 *     (high-bit part then low-bit part), and
 *   - one 8-bit synaptic weight from two 4-bit cells in adjacent bitlines,
 *
 * and assembles the Po-bit target output from the partial products:
 *
 *   Rfull = 2^((Pin+Pw)/2) RHH + 2^(Pw/2) RHL + 2^(Pin/2) RLH + RLL
 *   Rtarget = Rfull >> (Pin + Pw + PN - Po)
 *           ~ hi_Po(RHH) + hi_{Po-Pin/2}(RHL) + hi_{Po-Pw/2}(RLH)
 *             [+ hi_{Po-(Pin+Pw)/2}(RLL), empty with default parameters]
 *
 * where hi_k(x) keeps the highest k bits of the (Pin/2+Pw/2+PN)-bit
 * component result, i.e. an arithmetic right shift implemented by
 * reconfiguring the SA to k-bit precision (with the customary half-LSB
 * reference offset, so conversions round to nearest).  Each component
 * contributes at most half a target-scale ULP of rounding error and the
 * dropped LL part less than one, so |composed - exact shifted| <= 4 ULP.
 *
 * The LL term is always part of the assembly; "empty" above refers only
 * to its window under the defaults (Po=6 full-scale shift leaves hi_0).
 * At Po = 8, or under a calibrated (smaller) SA shift, LL carries real
 * bits -- see the OutputBits8KeepsLlTerm regression test.
 */

#ifndef PRIME_RERAM_COMPOSING_HH
#define PRIME_RERAM_COMPOSING_HH

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/rng.hh"
#include "reram/crossbar.hh"

namespace prime::reram {

/** Bit-width configuration of the composing scheme. */
struct ComposingParams
{
    /** Logical input precision Pin (paper: 6). */
    int inputBits = 6;
    /** Physical input-phase precision Pin/2 (paper: 3). */
    int inputPhaseBits = 3;
    /** Logical weight precision Pw (paper: 8, magnitude; sign via arrays). */
    int weightBits = 8;
    /** Physical cell precision Pw/2 (paper: 4). */
    int cellBits = 4;
    /** SA output precision Po (paper: 6). */
    int outputBits = 6;

    /** Validity: phases must exactly tile the logical widths. */
    bool
    consistent() const
    {
        return inputPhaseBits * 2 == inputBits && cellBits * 2 == weightBits &&
               outputBits >= 1 && outputBits <= 8;
    }
};

/** Smallest pn with 2^pn >= n (the paper's PN for an n-input array). */
int pnForInputCount(int n);

/** Split a Pin-bit unsigned input into (high, low) Pin/2-bit phases. */
std::pair<int, int> splitInput(int value, const ComposingParams &p);

/** Split a signed weight into (high, low) signed cell parts sharing sign. */
std::pair<int, int> splitWeight(int value, const ComposingParams &p);

/** floor(x / 2^shift): the SA's "take the highest bits" operation. */
std::int64_t takeHighBits(std::int64_t x, int shift);

/**
 * Reference semantics: the exact Po-bit target code for one output column,
 * Rtarget = floor(sum_i in_i * w_i / 2^(Pin + Pw + PN - Po)), with PN
 * derived from the input count (next power of two).
 */
std::int64_t composedTargetExact(std::span<const int> inputs,
                                 std::span<const int> weights,
                                 const ComposingParams &p);

/**
 * Pure-integer model of the composed computation: splits inputs and
 * weights, computes the HH/HL/LH(/LL) partial dot products, truncates each
 * with the SA rule and accumulates with the precision-control adder.
 * This is what the hardware datapath produces when devices are ideal.
 */
std::int64_t composedApprox(std::span<const int> inputs,
                            std::span<const int> weights,
                            const ComposingParams &p);

/** The paper's default output shift: Pin + Pw + PN - Po. */
int defaultOutputShift(const ComposingParams &p, int input_count);

/**
 * Composed computation with an explicitly configured output shift
 * (reconfigurable-SA range selection): Rtarget ~ Rfull >> total_shift.
 * In practice the full-scale shift wastes the SA's dynamic range --
 * trained layers produce dot products far below the theoretical
 * maximum -- so PRIME configures the SA window per layer from the
 * programmed weights (see calibratedOutputShift).  Each component
 * conversion saturates at the SA's (Po+1)-bit signed register.
 */
std::int64_t composedApproxShifted(std::span<const int> inputs,
                                   std::span<const int> weights,
                                   const ComposingParams &p,
                                   int total_shift);

/**
 * Static per-layer SA-range calibration: the smallest shift whose
 * window covers the worst-case |dot product| of the programmed weight
 * columns with any input vector (sum of 63 * |w| per column).
 */
int calibratedOutputShift(const std::vector<std::vector<int>> &weights,
                          const ComposingParams &p);

/** Assemble one output from the four component dot products under a
 *  configured SA window (exposed for the quantized runtime). */
std::int64_t composedAssemble(std::int64_t hh, std::int64_t hl,
                              std::int64_t lh, std::int64_t ll,
                              const ComposingParams &p, int total_shift);

/**
 * A matrix engine realizing the composing scheme on crossbar hardware:
 * a positive/negative crossbar pair whose adjacent bitlines hold the
 * high and low 4-bit halves of each logical 8-bit weight column.
 *
 * Computation runs in two analog passes (high input phase, low input
 * phase); the high pass yields the HH and LH components, the low pass the
 * HL and LL components, and the precision-control register+adder
 * (Figure 4 C) accumulates the truncated parts.
 */
class ComposedMatrixEngine
{
  public:
    /**
     * @param rows logical input count (crossbar wordlines)
     * @param cols logical output count (uses 2*cols physical bitlines)
     */
    ComposedMatrixEngine(int rows, int cols, const ComposingParams &p,
                         const CrossbarParams &array_params);

    /** Program logical signed weights in (-2^Pw, 2^Pw). */
    void programWeights(const std::vector<std::vector<int>> &weights,
                        Rng *rng = nullptr);

    /** Composed MVM with ideal devices (integer datapath). */
    std::vector<std::int64_t>
    mvmExact(std::span<const int> inputs) const;

    /**
     * Composed MVM through the analog arrays (programming variation baked
     * into conductances; read noise when @p rng set).  Component results
     * are quantized by the SA before truncation, as in hardware.
     */
    std::vector<std::int64_t>
    mvmAnalog(std::span<const int> inputs, Rng *rng = nullptr) const;

    /**
     * Batched composed MVM with ideal devices: one target-code row per
     * input vector, with input splitting and the per-pass dispatch
     * amortized across the batch.  Identical to per-sample mvmExact.
     */
    std::vector<std::vector<std::int64_t>>
    mvmExactBatch(const std::vector<std::vector<int>> &inputs) const;

    /**
     * Batched composed analog MVM.  Bit-identical to per-sample
     * mvmAnalog calls with the same @p rng: per sample, the high input
     * phase's noise draws (positive array then negative) precede the low
     * phase's.
     */
    std::vector<std::vector<std::int64_t>>
    mvmAnalogBatch(const std::vector<std::vector<int>> &inputs,
                   Rng *rng = nullptr) const;

    /** Reference target codes for the currently programmed weights. */
    std::vector<std::int64_t>
    targetExact(std::span<const int> inputs) const;

    /** Untruncated integer dot products (for SA-window calibration). */
    std::vector<std::int64_t>
    mvmFull(std::span<const int> inputs) const;

    int rows() const { return rows_; }
    int cols() const { return cols_; }
    const ComposingParams &composing() const { return composing_; }

    /** Configured SA-window shift (defaults to the paper's full-scale
     *  Pin + Pw + PN - Po). */
    int outputShift() const { return outputShift_; }
    void setOutputShift(int shift) { outputShift_ = shift; }
    /** Set the shift from the programmed weights' worst-case range. */
    void calibrateOutputShift();

    /** Total cell-write events across both arrays (endurance). */
    std::uint64_t totalCellWrites() const
    {
        return arrays_.positive().totalWear() +
               arrays_.negative().totalWear();
    }

    /** Worst single-cell wear across both arrays. */
    std::uint64_t maxCellWear() const
    {
        return std::max(arrays_.positive().maxWear(),
                        arrays_.negative().maxWear());
    }

  private:
    /** Assemble target codes from per-phase component results. */
    std::vector<std::int64_t>
    assemble(const std::vector<std::int64_t> &hh,
             const std::vector<std::int64_t> &hl,
             const std::vector<std::int64_t> &lh,
             const std::vector<std::int64_t> &ll) const;

    int rows_;
    int cols_;
    int pn_;
    ComposingParams composing_;
    int outputShift_;
    DifferentialPair arrays_;
    std::vector<std::vector<int>> logicalWeights_;
};

} // namespace prime::reram

#endif // PRIME_RERAM_COMPOSING_HH
