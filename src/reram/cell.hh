/**
 * @file
 * Metal-oxide ReRAM cell model (paper Section II-A, Figure 1).
 *
 * A cell is a Pt/TiO2-x/Pt metal-insulator-metal stack whose resistance is
 * switched between a high-resistance state (HRS, logic '0') and a
 * low-resistance state (LRS, logic '1') by SET/RESET pulses.  Multi-level
 * cells (MLC) subdivide the conductance range into 2^bits levels; PRIME
 * uses 4-bit MLC in computation mode and SLC in memory mode.
 *
 * Device parameters follow the paper's evaluation setup: Pt/TiO2-x/Pt with
 * Ron/Roff = 1 kOhm / 20 kOhm and 2 V SET/RESET [65], endurance up to
 * 1e12 cycles [21][22].
 */

#ifndef PRIME_RERAM_CELL_HH
#define PRIME_RERAM_CELL_HH

#include <cstdint>

#include "common/rng.hh"
#include "common/units.hh"

namespace prime::reram {

/** Static device parameters shared by all cells of an array. */
struct DeviceParams
{
    /** LRS resistance (fully-on). */
    Ohm rOn = 1000.0;
    /** HRS resistance (fully-off). */
    Ohm rOff = 20000.0;
    /** SET voltage magnitude. */
    Volt setVoltage = 2.0;
    /** RESET voltage magnitude. */
    Volt resetVoltage = 2.0;
    /** Read voltage (small enough not to disturb the cell). */
    Volt readVoltage = 0.3;
    /** Write endurance in SET/RESET cycles [21][22]. */
    std::uint64_t endurance = 1'000'000'000'000ull;
    /**
     * Relative sigma of programmed conductance for cells inside a crossbar
     * (about 3% per Alibart et al. [31]; 1% achievable on isolated cells).
     */
    double programVariation = 0.03;

    /** Minimum conductance (HRS). */
    MicroSiemens gMin() const { return units::ohmsToMicroSiemens(rOff); }
    /** Maximum conductance (LRS). */
    MicroSiemens gMax() const { return units::ohmsToMicroSiemens(rOn); }
};

/**
 * One ReRAM cell: programmable to an MLC level, readable as an analog
 * conductance, with endurance wear tracking.
 */
class Cell
{
  public:
    /** Construct an HRS ('0') cell. */
    Cell() = default;

    /**
     * Program the cell to @p level out of 2^bits levels (0 = HRS .. max =
     * LRS).  @p rng, when non-null, applies lognormal-ish programming
     * variation to the stored conductance; null programs ideally.
     */
    void program(const DeviceParams &params, int level, int bits,
                 Rng *rng = nullptr);

    /** SLC SET (program logic '1'). */
    void set(const DeviceParams &params, Rng *rng = nullptr);

    /** SLC RESET (program logic '0'). */
    void reset(const DeviceParams &params, Rng *rng = nullptr);

    /** Stored level (what the write driver targeted). */
    int level() const { return level_; }

    /** Stored level count (2^bits at last program). */
    int levelCount() const { return levelCount_; }

    /** Actual analog conductance, including programming error. */
    MicroSiemens conductance() const { return conductance_; }

    /** Read as a digital bit: true when above the SLC midpoint. */
    bool readBit(const DeviceParams &params) const;

    /** SET+RESET cycles experienced so far. */
    std::uint64_t wear() const { return wear_; }

    /** Whether the cell exceeded its endurance budget. */
    bool wornOut(const DeviceParams &params) const
    {
        return wear_ > params.endurance;
    }

    /** Ideal conductance for @p level of 2^bits levels. */
    static MicroSiemens idealConductance(const DeviceParams &params,
                                         int level, int bits);

  private:
    int level_ = 0;
    int levelCount_ = 2;
    MicroSiemens conductance_ = 0.0;
    std::uint64_t wear_ = 0;
    bool everProgrammed_ = false;
};

} // namespace prime::reram

#endif // PRIME_RERAM_CELL_HH
