/**
 * @file
 * Behavioral models of the FF-subarray peripheral circuits that PRIME
 * adds or modifies (paper Figure 4, blocks A-C):
 *
 *   A  Wordline decoder/driver: multi-level voltage sources with an input
 *      latch and per-wordline current amplifier; a mux switches between
 *      the two memory-mode voltages and the 2^Pin computation levels.
 *   B  Column multiplexer: analog subtraction unit (positive minus
 *      negative array) and analog sigmoid unit, both bypassable.
 *   C  Reconfigurable sense amplifier: precision configurable from 1 to
 *      Po bits via a counter; precision-control register + adder for the
 *      composing scheme; ReLU unit; 4:1 max-pool unit with winner code.
 *
 * These models define the *functional* behavior; their area/energy/delay
 * costs live in src/nvmodel.
 */

#ifndef PRIME_RERAM_PERIPHERAL_HH
#define PRIME_RERAM_PERIPHERAL_HH

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/units.hh"

namespace prime::reram {

/** Operating mode of a morphable FF structure. */
enum class FfMode { Memory, Computation };

/**
 * Multi-level wordline voltage driver with input latch (Figure 4 A).
 * In memory mode it supplies the fixed read or write voltage; in
 * computation mode it converts a latched digital input level to one of
 * 2^Pin analog voltages (the reused-DAC role).
 */
class WordlineDriver
{
  public:
    WordlineDriver(int input_bits, Volt read_voltage, Volt write_voltage);

    /** Latch a computation-mode input level. */
    void latchInput(int level);

    /** Select memory or computation mode (the mux in Figure 4 A). */
    void setMode(FfMode mode) { mode_ = mode; }
    FfMode mode() const { return mode_; }

    /** Output voltage for a memory-mode read access. */
    Volt memoryReadVoltage() const { return readVoltage_; }
    /** Output voltage for a memory-mode write access. */
    Volt memoryWriteVoltage() const { return writeVoltage_; }

    /** Driven voltage in computation mode for the latched level. */
    Volt computeVoltage() const;

    /** Number of selectable computation voltage levels. */
    int levelCount() const { return 1 << inputBits_; }
    int latchedLevel() const { return latchedLevel_; }

  private:
    int inputBits_;
    Volt readVoltage_;
    Volt writeVoltage_;
    FfMode mode_ = FfMode::Memory;
    int latchedLevel_ = 0;
};

/**
 * Analog subtraction unit (Figure 4 B): difference of the positive-array
 * and negative-array bitline currents.  Bypassable in memory mode.
 */
class SubtractionUnit
{
  public:
    void setBypass(bool bypass) { bypass_ = bypass; }
    bool bypassed() const { return bypass_; }

    /** pos - neg in computation mode; pos passes through when bypassed. */
    double apply(double pos_current, double neg_current) const;

  private:
    bool bypass_ = false;
};

/**
 * Analog sigmoid unit (Figure 4 B), after Li et al. [63].  Operates on a
 * normalized activation value; bypassable when a large NN spans multiple
 * crossbars and the non-linearity must wait for the merged sum.
 */
class SigmoidUnit
{
  public:
    void setBypass(bool bypass) { bypass_ = bypass; }
    bool bypassed() const { return bypass_; }

    /** sigmoid(x) or identity when bypassed. */
    double apply(double x) const;

  private:
    bool bypass_ = false;
};

/**
 * ReLU unit (Figure 4 C): checks the sign bit, outputs zero for negative
 * results and the value itself otherwise.
 */
class ReluUnit
{
  public:
    void setBypass(bool bypass) { bypass_ = bypass; }
    bool bypassed() const { return bypass_; }

    std::int64_t apply(std::int64_t x) const;

  private:
    bool bypass_ = false;
};

/**
 * Reconfigurable sense amplifier (Figure 4 C), after Li et al. [64]:
 * converts an analog bitline value to a digital code at a precision
 * configurable between 1 bit and Po bits (counter controlled).  In this
 * behavioral model the analog value arrives in level units (see
 * Crossbar::levelUnitsFromCurrent) together with the full-scale range.
 */
class ReconfigurableSenseAmp
{
  public:
    /** @param max_bits hardware precision ceiling Po (paper: 6, <= 8). */
    explicit ReconfigurableSenseAmp(int max_bits);

    /** Configure conversion precision to 1..maxBits bits. */
    void setPrecision(int bits);
    int precision() const { return bits_; }
    int maxBits() const { return maxBits_; }

    /**
     * Convert: keep the highest `precision` bits of a full-scale-bits wide
     * non-negative component result (floor semantics; negative component
     * values from the differential pair shift arithmetically).
     */
    std::int64_t convert(std::int64_t full_value, int full_scale_bits) const;

    /** Conversion latency in SA clock cycles (successive approximation). */
    int conversionCycles() const { return bits_; }

  private:
    int maxBits_;
    int bits_;
};

/**
 * Precision-control circuit (Figure 4 C): a register plus adder that
 * accumulates the shifted partial results of the composing scheme so
 * low-precision cells can realize a high-precision weight.
 */
class PrecisionControl
{
  public:
    void clear() { acc_ = 0; }

    /** Accumulate a partial result already truncated to target scale. */
    void accumulate(std::int64_t partial) { acc_ += partial; }

    std::int64_t value() const { return acc_; }

  private:
    std::int64_t acc_ = 0;
};

/**
 * 4:1 max-pooling unit (Figure 4 C and Section III-E).  Hardware flow:
 * the four inputs a1..a4 are latched in registers; ReRAM computes the six
 * signed dot products with weight vectors [1,-1,0,0], [1,0,-1,0],
 * [1,0,0,-1], [0,1,-1,0], [0,1,0,-1], [0,0,1,-1]; the six sign bits form
 * the winner code from which the maximum is selected.  n:1 pooling for
 * n > 4 runs in multiple passes.
 */
class MaxPoolUnit
{
  public:
    /** The six difference-weight vectors burned into ReRAM. */
    static const std::array<std::array<int, 4>, 6> kDifferenceWeights;

    /** One 4:1 pooling step; fills the winner-code register. */
    std::int64_t pool4(const std::array<std::int64_t, 4> &inputs);

    /** n:1 pooling via repeated 4:1 passes (n need not be a multiple of 4). */
    std::int64_t poolN(const std::vector<std::int64_t> &inputs);

    /** Winner code of the last pool4 call (six sign bits). */
    std::uint8_t winnerCode() const { return winnerCode_; }

    /** Index (0-3) selected by the last pool4 call. */
    int winnerIndex() const { return winnerIndex_; }

  private:
    std::uint8_t winnerCode_ = 0;
    int winnerIndex_ = 0;
};

/**
 * Mean pooling needs no extra hardware (Section III-E): weights
 * [1/n, ..., 1/n] are pre-programmed and one dot product yields the mean.
 * Provided here as the same-level behavioral helper.
 */
std::int64_t meanPool(const std::vector<std::int64_t> &inputs);

} // namespace prime::reram

#endif // PRIME_RERAM_PERIPHERAL_HH
